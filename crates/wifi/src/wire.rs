//! 802.11 MAC frame wire format — the subset DiversiFi's control plane
//! touches.
//!
//! Most of the simulator moves [`crate::frame::Frame`] descriptors rather
//! than bytes, but DiversiFi's deployment story depends on three concrete
//! wire-level artifacts, which we implement faithfully:
//!
//! 1. **Data/Null frames with the Power-Management bit** — the client's
//!    sleep/wake signalling (§5.2.4) rides on the PM bit of the Frame
//!    Control field.
//! 2. **The association-request information element** carrying the
//!    requested per-station queue length (§5.3.1: "the client could signal
//!    the desired maximum queue size to the AP ... using an unused
//!    information element in the 802.11 association request frame"). We
//!    define that IE: a vendor-specific element (ID 221) with a
//!    DiversiFi OUI, one mode byte (head-drop) and a 16-bit queue cap.
//! 3. **Sequence-control** numbering used for duplicate detection.

use serde::{Deserialize, Serialize};

/// 802.11 frame types we model on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireFrameType {
    /// Data frame (type 2, subtype 0).
    Data,
    /// Null function (type 2, subtype 4) — PM signalling with no payload.
    NullFunction,
    /// Association request (type 0, subtype 0).
    AssociationRequest,
}

/// Parsed view of the fields DiversiFi cares about.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireFrame {
    /// Frame type.
    pub ftype: WireFrameType,
    /// Power-management bit (PM=1 → "I am going to sleep").
    pub power_management: bool,
    /// Retry bit.
    pub retry: bool,
    /// Sequence number (12 bits).
    pub sequence: u16,
    /// Receiver address.
    pub addr1: [u8; 6],
    /// Transmitter address.
    pub addr2: [u8; 6],
    /// BSSID.
    pub addr3: [u8; 6],
    /// Body (information elements for management frames; payload for data).
    pub body: Vec<u8>,
}

/// MAC header length (3-address format).
pub const MAC_HEADER_LEN: usize = 24;

/// Vendor-specific IE id (the standard "vendor" element).
pub const VENDOR_IE_ID: u8 = 221;

/// The OUI we use for the DiversiFi queue-management IE (locally
/// administered — not a real allocation).
pub const DIVERSIFI_OUI: [u8; 3] = [0x02, 0xD1, 0xF1];

/// Queue-management request carried in the association request (§5.3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueMgmtIe {
    /// `true` = head-drop requested; `false` = stock behaviour.
    pub head_drop: bool,
    /// Requested maximum queue length in frames.
    pub max_queue_len: u16,
}

/// Errors from frame parsing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Frame shorter than the MAC header.
    Truncated,
    /// Frame control type/subtype not one we model.
    UnsupportedType(u8, u8),
    /// Malformed information-element structure.
    BadElement,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::UnsupportedType(t, s) => write!(f, "unsupported type {t}/{s}"),
            WireError::BadElement => write!(f, "malformed information element"),
        }
    }
}

impl std::error::Error for WireError {}

impl WireFrame {
    /// A Null-function frame carrying a PM state change.
    pub fn null_function(
        pm: bool,
        sequence: u16,
        sta: [u8; 6],
        bssid: [u8; 6],
    ) -> WireFrame {
        WireFrame {
            ftype: WireFrameType::NullFunction,
            power_management: pm,
            retry: false,
            sequence,
            addr1: bssid,
            addr2: sta,
            addr3: bssid,
            body: Vec::new(),
        }
    }

    /// An association request with the DiversiFi queue-management IE.
    pub fn association_request(
        sta: [u8; 6],
        bssid: [u8; 6],
        ie: QueueMgmtIe,
    ) -> WireFrame {
        WireFrame {
            ftype: WireFrameType::AssociationRequest,
            power_management: false,
            retry: false,
            sequence: 0,
            addr1: bssid,
            addr2: sta,
            addr3: bssid,
            body: encode_queue_mgmt_ie(ie),
        }
    }

    /// Serialise to wire bytes (without FCS).
    pub fn encode(&self) -> Vec<u8> {
        let (ftype, subtype) = match self.ftype {
            WireFrameType::Data => (2u8, 0u8),
            WireFrameType::NullFunction => (2, 4),
            WireFrameType::AssociationRequest => (0, 0),
        };
        let fc0 = (subtype << 4) | (ftype << 2); // version 0
        let mut fc1 = 0u8;
        if self.retry {
            fc1 |= 0x08;
        }
        if self.power_management {
            fc1 |= 0x10;
        }
        let mut out = Vec::with_capacity(MAC_HEADER_LEN + self.body.len());
        out.push(fc0);
        out.push(fc1);
        out.extend_from_slice(&[0, 0]); // duration
        out.extend_from_slice(&self.addr1);
        out.extend_from_slice(&self.addr2);
        out.extend_from_slice(&self.addr3);
        out.extend_from_slice(&(self.sequence << 4).to_le_bytes()); // seq ctl
        out.extend_from_slice(&self.body);
        out
    }

    /// Parse from wire bytes.
    pub fn decode(data: &[u8]) -> Result<WireFrame, WireError> {
        if data.len() < MAC_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let fc0 = data[0];
        let fc1 = data[1];
        let ftype_bits = (fc0 >> 2) & 0x3;
        let subtype = fc0 >> 4;
        let ftype = match (ftype_bits, subtype) {
            (2, 0) => WireFrameType::Data,
            (2, 4) => WireFrameType::NullFunction,
            (0, 0) => WireFrameType::AssociationRequest,
            (t, s) => return Err(WireError::UnsupportedType(t, s)),
        };
        let addr = |off: usize| -> [u8; 6] {
            let mut a = [0u8; 6];
            a.copy_from_slice(&data[off..off + 6]);
            a
        };
        let seq_ctl = u16::from_le_bytes([data[22], data[23]]);
        Ok(WireFrame {
            ftype,
            power_management: fc1 & 0x10 != 0,
            retry: fc1 & 0x08 != 0,
            sequence: seq_ctl >> 4,
            addr1: addr(4),
            addr2: addr(10),
            addr3: addr(16),
            body: data[MAC_HEADER_LEN..].to_vec(),
        })
    }

    /// Extract a queue-management IE from a management-frame body, if any.
    pub fn queue_mgmt_ie(&self) -> Result<Option<QueueMgmtIe>, WireError> {
        parse_queue_mgmt_ie(&self.body)
    }
}

/// Encode the queue-management IE (vendor element).
pub fn encode_queue_mgmt_ie(ie: QueueMgmtIe) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + 3 + 3);
    out.push(VENDOR_IE_ID);
    out.push(6); // OUI(3) + mode(1) + cap(2)
    out.extend_from_slice(&DIVERSIFI_OUI);
    out.push(ie.head_drop as u8);
    out.extend_from_slice(&ie.max_queue_len.to_le_bytes());
    out
}

/// Walk an IE list looking for the DiversiFi queue-management element.
pub fn parse_queue_mgmt_ie(body: &[u8]) -> Result<Option<QueueMgmtIe>, WireError> {
    let mut rest = body;
    while !rest.is_empty() {
        if rest.len() < 2 {
            return Err(WireError::BadElement);
        }
        let id = rest[0];
        let len = rest[1] as usize;
        if rest.len() < 2 + len {
            return Err(WireError::BadElement);
        }
        let payload = &rest[2..2 + len];
        if id == VENDOR_IE_ID && len == 6 && payload[..3] == DIVERSIFI_OUI {
            return Ok(Some(QueueMgmtIe {
                head_drop: payload[3] != 0,
                max_queue_len: u16::from_le_bytes([payload[4], payload[5]]),
            }));
        }
        rest = &rest[2 + len..];
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    const STA: [u8; 6] = [0x02, 0xAA, 0xBB, 0xCC, 0xDD, 0x01];
    const AP: [u8; 6] = [0x02, 0x11, 0x22, 0x33, 0x44, 0x55];

    #[test]
    fn null_frame_roundtrip_with_pm_bit() {
        for pm in [true, false] {
            let f = WireFrame::null_function(pm, 1234, STA, AP);
            let wire = f.encode();
            assert_eq!(wire.len(), MAC_HEADER_LEN);
            let back = WireFrame::decode(&wire).unwrap();
            assert_eq!(back, f);
            assert_eq!(back.power_management, pm);
            assert_eq!(back.sequence, 1234);
        }
    }

    #[test]
    fn association_request_carries_queue_ie() {
        // The paper's derived value: APQL = MTD/IPS = 100/20 = 5, head-drop.
        let ie = QueueMgmtIe { head_drop: true, max_queue_len: 5 };
        let f = WireFrame::association_request(STA, AP, ie);
        let wire = f.encode();
        let back = WireFrame::decode(&wire).unwrap();
        assert_eq!(back.ftype, WireFrameType::AssociationRequest);
        assert_eq!(back.queue_mgmt_ie().unwrap(), Some(ie));
    }

    #[test]
    fn queue_ie_among_other_elements() {
        // SSID element (id 0) before ours; an unknown vendor IE after.
        let mut body = vec![0u8, 4, b't', b'e', b's', b't'];
        body.extend(encode_queue_mgmt_ie(QueueMgmtIe { head_drop: true, max_queue_len: 50 }));
        body.extend([221u8, 4, 0x00, 0x50, 0xF2, 0x02]); // WMM-ish vendor IE
        let ie = parse_queue_mgmt_ie(&body).unwrap().unwrap();
        assert_eq!(ie.max_queue_len, 50);
        assert!(ie.head_drop);
    }

    #[test]
    fn body_without_our_ie_is_none() {
        let body = vec![0u8, 3, b'f', b'o', b'o'];
        assert_eq!(parse_queue_mgmt_ie(&body).unwrap(), None);
        assert_eq!(parse_queue_mgmt_ie(&[]).unwrap(), None);
    }

    #[test]
    fn malformed_elements_rejected() {
        assert_eq!(parse_queue_mgmt_ie(&[221]), Err(WireError::BadElement));
        assert_eq!(parse_queue_mgmt_ie(&[221, 10, 1, 2]), Err(WireError::BadElement));
    }

    #[test]
    fn truncated_frame_rejected() {
        assert_eq!(WireFrame::decode(&[0u8; 10]), Err(WireError::Truncated));
    }

    #[test]
    fn unsupported_type_rejected() {
        let mut wire = WireFrame::null_function(false, 0, STA, AP).encode();
        wire[0] = 0b1000_0100; // control frame
        assert!(matches!(WireFrame::decode(&wire), Err(WireError::UnsupportedType(_, _))));
    }

    #[test]
    fn sequence_number_is_12_bits() {
        let f = WireFrame::null_function(false, 0x0FFF, STA, AP);
        let back = WireFrame::decode(&f.encode()).unwrap();
        assert_eq!(back.sequence, 0x0FFF);
    }

    #[test]
    fn retry_bit_roundtrip() {
        let mut f = WireFrame::null_function(false, 7, STA, AP);
        f.retry = true;
        let back = WireFrame::decode(&f.encode()).unwrap();
        assert!(back.retry);
    }
}
