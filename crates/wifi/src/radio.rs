//! PHY-rate table and the SNR → packet-error-rate model.
//!
//! We model a single-spatial-stream 802.11n rate ladder (MCS 0–7 at 20 MHz,
//! long guard interval). Rate adaptation elsewhere picks the fastest rate
//! whose SNR requirement is met, and falls back on retries — the standard
//! behaviour of Minstrel-class algorithms at the granularity that matters
//! for loss/latency statistics.

use serde::{Deserialize, Serialize};

/// Thermal-noise floor plus typical receiver noise figure, in dBm, for a
/// 20 MHz channel.
pub const NOISE_FLOOR_DBM: f64 = -92.0;

/// One entry of the PHY rate ladder.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhyRate {
    /// MCS index (0–7).
    pub mcs: u8,
    /// Data rate in megabits per second.
    pub mbps: f64,
    /// Minimum SNR (dB) at which this rate sustains a low error rate.
    pub min_snr_db: f64,
}

/// The 802.11n single-stream rate ladder (20 MHz, 800 ns GI), with SNR
/// thresholds in line with published receiver-sensitivity tables.
pub const RATE_LADDER: [PhyRate; 8] = [
    PhyRate { mcs: 0, mbps: 6.5, min_snr_db: 5.0 },
    PhyRate { mcs: 1, mbps: 13.0, min_snr_db: 8.0 },
    PhyRate { mcs: 2, mbps: 19.5, min_snr_db: 11.0 },
    PhyRate { mcs: 3, mbps: 26.0, min_snr_db: 14.0 },
    PhyRate { mcs: 4, mbps: 39.0, min_snr_db: 18.0 },
    PhyRate { mcs: 5, mbps: 52.0, min_snr_db: 22.0 },
    PhyRate { mcs: 6, mbps: 58.5, min_snr_db: 24.0 },
    PhyRate { mcs: 7, mbps: 65.0, min_snr_db: 26.0 },
];

/// Highest rate whose SNR requirement is met with `margin_db` of headroom.
/// Falls back to MCS 0 if even that is not met (the MAC always has a lowest
/// rate to try).
pub fn select_rate(snr_db: f64, margin_db: f64) -> PhyRate {
    let mut chosen = RATE_LADDER[0];
    for rate in RATE_LADDER.iter() {
        if snr_db >= rate.min_snr_db + margin_db {
            chosen = *rate;
        }
    }
    chosen
}

/// Rate one step below `rate` (retry fallback); MCS 0 stays MCS 0.
pub fn fallback_rate(rate: PhyRate) -> PhyRate {
    let idx = rate.mcs.saturating_sub(1) as usize;
    RATE_LADDER[idx]
}

/// PHY packet error rate for a frame of `bytes` at `rate` given `snr_db`.
///
/// We use a logistic curve in SNR around the rate's threshold, scaled by
/// frame length (longer frames see more symbol errors). This reproduces the
/// qualitative shape of measured 802.11 PER-vs-SNR curves: a sharp
/// "waterfall" a few dB wide around the sensitivity point.
pub fn phy_per(snr_db: f64, rate: PhyRate, bytes: u32) -> f64 {
    // Mid-point of the waterfall sits ~2 dB below the "clean" threshold.
    let mid = rate.min_snr_db - 2.0;
    let steep = 1.4; // dB scale of the waterfall
    let bit_scale = (bytes as f64 / 1500.0).max(0.05); // longer frame -> worse
    let base = 1.0 / (1.0 + ((snr_db - mid) * steep).exp());
    // Convert a "symbol block" error prob into a frame error prob.
    let per = 1.0 - (1.0 - base).powf(bit_scale.max(0.05) * 8.0);
    per.clamp(0.0, 1.0)
}

/// Log-distance path loss in dB: `ref_loss + 10·n·log10(d)` with exponent
/// `n` (≈ 3–3.5 indoors through cubicles and walls).
pub fn path_loss_db(reference_loss_db: f64, exponent: f64, distance_m: f64) -> f64 {
    assert!(distance_m > 0.0, "distance must be positive");
    reference_loss_db + 10.0 * exponent * distance_m.max(1.0).log10()
}

/// Received signal strength for a given transmit power and path loss.
pub fn rssi_dbm(tx_power_dbm: f64, path_loss_db: f64) -> f64 {
    tx_power_dbm - path_loss_db
}

/// SNR in dB implied by an RSSI.
pub fn snr_db(rssi_dbm: f64) -> f64 {
    rssi_dbm - NOISE_FLOOR_DBM
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone() {
        for w in RATE_LADDER.windows(2) {
            assert!(w[1].mbps > w[0].mbps);
            assert!(w[1].min_snr_db > w[0].min_snr_db);
            assert_eq!(w[1].mcs, w[0].mcs + 1);
        }
    }

    #[test]
    fn select_rate_picks_highest_feasible() {
        assert_eq!(select_rate(30.0, 0.0).mcs, 7);
        assert_eq!(select_rate(23.0, 0.0).mcs, 5);
        assert_eq!(select_rate(5.5, 0.0).mcs, 0);
        assert_eq!(select_rate(-10.0, 0.0).mcs, 0, "always has a floor");
    }

    #[test]
    fn margin_makes_selection_conservative() {
        let aggressive = select_rate(23.0, 0.0);
        let cautious = select_rate(23.0, 5.0);
        assert!(cautious.mcs < aggressive.mcs);
    }

    #[test]
    fn fallback_descends_to_floor() {
        let mut r = RATE_LADDER[7];
        for _ in 0..10 {
            r = fallback_rate(r);
        }
        assert_eq!(r.mcs, 0);
    }

    #[test]
    fn per_waterfall_shape() {
        let r = RATE_LADDER[3]; // 26 Mbps, threshold 14 dB
        let high = phy_per(r.min_snr_db + 6.0, r, 1500);
        let at = phy_per(r.min_snr_db, r, 1500);
        let low = phy_per(r.min_snr_db - 6.0, r, 1500);
        assert!(high < 0.02, "clean channel should be near-lossless, per={high}");
        assert!(at < 0.5, "at threshold should still mostly work, per={at}");
        assert!(low > 0.95, "deep below threshold should fail, per={low}");
    }

    #[test]
    fn per_grows_with_frame_size() {
        let r = RATE_LADDER[2];
        let small = phy_per(r.min_snr_db - 1.0, r, 160);
        let big = phy_per(r.min_snr_db - 1.0, r, 1500);
        assert!(big > small, "voip frames ({small}) should outlive mtu frames ({big})");
    }

    #[test]
    fn per_bounds() {
        for rate in RATE_LADDER {
            for snr in [-20.0, 0.0, 15.0, 40.0] {
                let p = phy_per(snr, rate, 1500);
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn path_loss_monotone_in_distance() {
        let a = path_loss_db(40.0, 3.0, 5.0);
        let b = path_loss_db(40.0, 3.0, 20.0);
        assert!(b > a);
        // 4x distance at n=3 → +18 dB
        assert!((b - a - 18.06).abs() < 0.1);
    }

    #[test]
    fn rssi_snr_chain() {
        // 15 dBm TX, 80 dB path loss → -65 dBm RSSI → 27 dB SNR.
        let rssi = rssi_dbm(15.0, 80.0);
        assert_eq!(rssi, -65.0);
        assert_eq!(snr_db(rssi), 27.0);
    }
}
