//! # diversifi-wifi
//!
//! The simulated WiFi substrate for the DiversiFi reproduction: everything
//! the paper's physical testbed provided, rebuilt as deterministic,
//! poll-driven state machines.
//!
//! Layers, bottom-up:
//!
//! - [`channel`] — bands, channels, spectral overlap.
//! - [`radio`] — path loss, RSSI/SNR, the 802.11n rate ladder, and the
//!   SNR→PER waterfall.
//! - [`fading`] — Gilbert–Elliott burst fading and Ornstein–Uhlenbeck
//!   shadowing, the processes that make WiFi loss *bursty* and *weakly
//!   correlated across links* (the two facts DiversiFi exploits).
//! - [`impairment`] — microwave ovens, congestion, mobility (the paper's
//!   Fig. 6 categories).
//! - [`realization`] — pre-materialised channel timelines and the LRU cache
//!   that lets paired experiment arms replay one realisation N times.
//! - [`link`] — the composite per-(AP, adapter, channel) loss model.
//! - [`mac`] — DCF timing, retries, backoff and rate fallback for a single
//!   frame exchange.
//! - [`ap`] — per-station queues, power-save buffering, head-drop vs
//!   tail-drop disciplines, and wake-batch hardware commitment.
//!
//! Nothing here does I/O; the event loop lives with the caller
//! (see the `diversifi` core crate's world model).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library diagnostics go through `diversifi_simcore::telemetry`, never
// stdout/stderr; CI's `clippy -D warnings` enforces this.
#![warn(clippy::print_stdout, clippy::print_stderr)]

pub mod ap;
pub mod channel;
pub mod fading;
pub mod frame;
pub mod ids;
pub mod impairment;
pub mod link;
pub mod mac;
pub mod radio;
pub mod realization;
pub mod scan;
pub mod wire;

pub use ap::{AccessPoint, ApConfig, ApMetrics, Enqueued, QueueDiscipline};
pub use channel::{Band, Channel};
pub use fading::{GeParams, GeSegment, GeState, GilbertElliott, OrnsteinUhlenbeck};
pub use frame::{Frame, FrameKind};
pub use ids::{AdapterId, ApId, ClientId, FlowId};
pub use impairment::{Congestion, ImpairmentKind, MicrowaveOven, MobilityPattern};
pub use link::{LinkConfig, LinkModel};
pub use mac::{frame_airtime, transmit, MacConfig, MacMetrics, TxOutcome};
pub use radio::{PhyRate, NOISE_FLOOR_DBM, RATE_LADDER};
pub use realization::{
    ChannelRealization, RealizationCache, RealizationKey, ShadowCursor, SHADOW_TICK,
};
pub use scan::{DeployedAp, Deployment, ScanEntry, ScanTiming, TimedScan, CONNECTABLE_RSSI_DBM};
pub use wire::{QueueMgmtIe, WireError, WireFrame, WireFrameType};

#[cfg(test)]
mod proptests {
    use super::*;
    use diversifi_simcore::{SeedFactory, SimDuration, SimTime};
    use proptest::prelude::*;

    proptest! {
        /// Queue disciplines never exceed their cap and never lose count:
        /// enqueued = queued + dropped + transmitted.
        #[test]
        fn queue_conservation(
            cap in 1usize..16,
            head_drop in any::<bool>(),
            ops in proptest::collection::vec(0u8..4, 1..200),
        ) {
            let a = AdapterId(1);
            let mut ap = AccessPoint::new(ApConfig::new(ApId(0), Channel::CH1));
            let disc = if head_drop {
                QueueDiscipline::HeadDrop { cap }
            } else {
                QueueDiscipline::TailDrop { cap }
            };
            ap.associate(a, disc);
            let mut seq = 0u64;
            let mut enq = 0u64;
            let mut dropped = 0u64;
            let mut txed = 0u64;
            for op in ops {
                match op {
                    0 | 1 => {
                        let f = Frame::data(FlowId(0), seq, 160, SimTime::ZERO, ClientId(0), a);
                        seq += 1;
                        enq += 1;
                        if let Enqueued::Dropped { .. } = ap.enqueue(a, f) {
                            dropped += 1;
                        }
                        prop_assert!(ap.queue_len(a) <= cap);
                    }
                    2 => {
                        if ap.next_tx().is_some() {
                            txed += 1;
                        }
                    }
                    _ => {
                        let sleeping = seq.is_multiple_of(2);
                        ap.set_power_save(a, sleeping);
                    }
                }
            }
            let held = (ap.queue_len(a) + ap.hw_len(a)) as u64;
            prop_assert_eq!(enq, dropped + txed + held);
        }

        /// The MAC always terminates within the retry budget and time moves
        /// forward, for arbitrary link geometry.
        #[test]
        fn mac_always_terminates(
            distance in 1.0f64..80.0,
            bytes in 40u32..1500,
            seed in any::<u64>(),
        ) {
            let seeds = SeedFactory::new(seed);
            let mut link = LinkModel::new(
                LinkConfig::office(Channel::CH11, distance), &seeds, 0);
            let mac = MacConfig::default();
            let f = Frame::data(FlowId(0), 0, bytes, SimTime::ZERO, ClientId(0), AdapterId(0));
            let start = SimTime::from_millis(1);
            let out = transmit(&mut link, &mac, &f, start);
            prop_assert!(out.attempts >= 1);
            prop_assert!(out.attempts <= mac.retry_limit + 1);
            prop_assert!(out.completed_at > start);
            prop_assert!(out.airtime > SimDuration::ZERO);
        }

        /// Erasure composition stays within [0,1] for arbitrary impairment
        /// stacks and query times.
        #[test]
        fn erasure_always_probability(
            distance in 1.0f64..120.0,
            diversity in 1u8..5,
            with_mw in any::<bool>(),
            with_cong in any::<bool>(),
            seed in any::<u64>(),
        ) {
            let mut cfg = LinkConfig::office(Channel::CH11, distance);
            cfg.diversity_order = diversity;
            if with_mw { cfg.microwave = Some(MicrowaveOven::default()); }
            if with_cong { cfg.congestion = Some(Congestion::heavy()); }
            let seeds = SeedFactory::new(seed);
            let mut link = LinkModel::new(cfg, &seeds, 0);
            let mut t = SimTime::ZERO;
            for _ in 0..64 {
                let rate = link.select_rate_at(t);
                let p = link.attempt_erasure(t, rate, 1500);
                prop_assert!((0.0..=1.0).contains(&p), "p={}", p);
                t += SimDuration::from_micros(777);
            }
        }
    }
}
