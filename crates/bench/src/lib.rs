//! # diversifi-bench
//!
//! The reproduction harness for every table and figure in the DiversiFi
//! paper, plus Criterion micro-benchmarks of the hot paths.
//!
//! The `repro` binary regenerates the paper's results:
//!
//! ```text
//! cargo run --release -p diversifi-bench --bin repro -- all
//! cargo run --release -p diversifi-bench --bin repro -- fig2a fig8 table3
//! cargo run --release -p diversifi-bench --bin repro -- --quick all
//! ```
//!
//! Each experiment prints the paper-comparable rows/series and writes a
//! JSON artifact under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library diagnostics go through `diversifi_simcore::telemetry`, never
// stdout/stderr (the `repro` *binary* owns stdout); CI's `clippy -D
// warnings` enforces this.
#![warn(clippy::print_stdout, clippy::print_stderr)]

use diversifi::analysis::AnalysisOptions;
use diversifi::evaluation::EvalOptions;

/// Scale factors for a quick (CI-friendly) pass vs the full paper-size run.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Divide corpus sizes by this.
    pub corpus_divisor: usize,
    /// Call duration in seconds (paper: 120).
    pub call_secs: u64,
}

impl Scale {
    /// Full paper-scale settings.
    pub fn full() -> Scale {
        Scale { corpus_divisor: 1, call_secs: 120 }
    }

    /// Reduced settings for smoke runs.
    pub fn quick() -> Scale {
        Scale { corpus_divisor: 8, call_secs: 30 }
    }

    /// Apply to an analysis corpus.
    pub fn analysis(&self, mut opts: AnalysisOptions) -> AnalysisOptions {
        opts.n_calls = (opts.n_calls / self.corpus_divisor).max(6);
        opts.spec.duration = diversifi_simcore::SimDuration::from_secs(self.call_secs);
        opts
    }

    /// Apply to the §6 evaluation corpus.
    pub fn eval(&self, mut opts: EvalOptions) -> EvalOptions {
        opts.n_runs = (opts.n_runs / self.corpus_divisor).max(4);
        opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_shrinks() {
        let s = Scale::quick();
        let a = s.analysis(AnalysisOptions::paper_corpus());
        assert!(a.n_calls < 458 && a.n_calls >= 6);
        let e = s.eval(EvalOptions::default());
        assert!(e.n_runs < 61 && e.n_runs >= 4);
    }

    #[test]
    fn full_scale_is_identity() {
        let s = Scale::full();
        let a = s.analysis(AnalysisOptions::paper_corpus());
        assert_eq!(a.n_calls, 458);
    }
}
