//! `repro` — regenerate every table and figure of the DiversiFi paper.
//!
//! Usage:
//! ```text
//! repro [--quick] [--seed N] [--out DIR] [EXPERIMENT...]
//! ```
//! Experiments: `table1 table2 table3 fig1 fig2a fig2b fig2c fig2d fig2e
//! fig3 fig4 fig5 fig6 fig8 fig9 fig10 overhead mbox-scale` or `all`, plus
//! the extensions `ablations`, `fec`, `crosstech`, and `uplink`.
//!
//! Resilience sweep (deterministic fault plans, paired vs primary-only):
//! ```text
//! repro --resilience                    # fault catalogue × seeds → report
//! ```
//!
//! Telemetry capture (full fidelity needs a build with `--features trace`):
//! ```text
//! repro --trace-out trace.json          # Chrome/Perfetto JSON + JSONL sidecar
//! repro --metrics-out metrics.txt       # per-sweep metrics table
//! repro --telemetry-status              # is the telemetry layer compiled in?
//! ```
//! With only telemetry flags given, the standard experiments are skipped.

use diversifi::analysis::{
    self, burst_summary, correlation_figure, pcr_by_impairment, strategy_cdf, AnalysisOptions,
    CallRecord, QualityParams, Strategy,
};
use diversifi::evaluation::{
    arm_traces, measure_switch_delays, middlebox_scalability, overhead_summary,
    run_eval_corpus, run_tcp_corpus, table3_row, EvalOptions, EvalRun,
};
use diversifi::report::{self, signed_pct, TextTable};
use diversifi::world::RunMode;
use diversifi::{nettest, population, survey};
use diversifi_bench::Scale;
use diversifi_client::cross_link;
use diversifi_simcore::{mean, Ecdf, SeedFactory, SimDuration, SweepRunner};
use diversifi_voip::{metrics, StreamSpec, DEFAULT_DEADLINE};
use diversifi_wifi::{Channel, GeParams, LinkConfig};

struct Ctx {
    scale: Scale,
    seed: u64,
    out_dir: String,
    threads: usize,
    main_corpus: Option<Vec<CallRecord>>,
    eval_corpus: Option<Vec<EvalRun>>,
}

impl Ctx {
    fn main_corpus(&mut self) -> &[CallRecord] {
        if self.main_corpus.is_none() {
            eprintln!("[corpus] simulating the §4 two-NIC corpus…");
            let opts = self.scale.analysis(AnalysisOptions::paper_corpus());
            self.main_corpus = Some(analysis::run_corpus(&opts, self.seed));
        }
        self.main_corpus.as_deref().unwrap()
    }

    fn eval_corpus(&mut self) -> &[EvalRun] {
        if self.eval_corpus.is_none() {
            eprintln!("[corpus] simulating the §6 single-NIC corpus…");
            let opts = self.scale.eval(EvalOptions::default());
            self.eval_corpus = Some(run_eval_corpus(&opts, self.seed));
        }
        self.eval_corpus.as_deref().unwrap()
    }
}

fn main() {
    let mut scale = Scale::full();
    let mut seed = 0xD1BE5F1u64;
    let mut out_dir = "results".to_string();
    let mut wanted: Vec<String> = Vec::new();
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut campaign_path: Option<String> = None;
    let mut validate_paths: Vec<String> = Vec::new();
    let mut forensics_out: Option<String> = None;
    let mut flight_topk: Option<usize> = None;
    let mut chaos_path: Option<String> = None;
    let mut chaos_plans: Option<u64> = None;
    let mut chaos_corpus: Option<String> = None;
    let mut chaos_canary = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => scale = Scale::quick(),
            "--seed" => {
                seed = args.next().expect("--seed N").parse().expect("seed must be u64")
            }
            "--out" => out_dir = args.next().expect("--out DIR"),
            "--trace-out" => trace_out = Some(args.next().expect("--trace-out PATH")),
            "--metrics-out" => metrics_out = Some(args.next().expect("--metrics-out PATH")),
            "--resilience" => wanted.push("resilience".to_string()),
            "--phase-profile" => {
                phase_profile(seed);
                return;
            }
            "--bench-compare" => {
                let fresh = args.next().expect("--bench-compare FRESH.json [BASELINE.json...]");
                let baselines: Vec<String> = args.collect();
                std::process::exit(bench_compare(&fresh, &baselines));
            }
            "--campaign" => {
                campaign_path = Some(args.next().expect("--campaign SCENARIO.{json,toml}"));
            }
            "--forensics-out" => {
                forensics_out = Some(args.next().expect("--forensics-out DIR"));
            }
            "--chaos" => {
                chaos_path = Some(args.next().expect("--chaos SCENARIO.{json,toml}"));
            }
            "--chaos-plans" => {
                chaos_plans = Some(
                    args.next()
                        .expect("--chaos-plans N")
                        .parse()
                        .expect("chaos plan count must be u64"),
                );
            }
            "--chaos-corpus" => {
                chaos_corpus = Some(args.next().expect("--chaos-corpus DIR"));
            }
            "--chaos-canary" => chaos_canary = true,
            "--flight-topk" => {
                flight_topk = Some(
                    args.next()
                        .expect("--flight-topk N")
                        .parse()
                        .expect("flight top-K must be a small integer"),
                );
            }
            "--validate-scenario" => {
                validate_paths.push(args.next().expect("--validate-scenario SCENARIO.{json,toml}"));
            }
            "--telemetry-status" => {
                println!(
                    "telemetry: compiled {}",
                    if diversifi_simcore::telemetry::TRACE_COMPILED { "in" } else { "out" }
                );
                println!(
                    "flight recorder: compiled {}",
                    if diversifi_simcore::FLIGHT_COMPILED { "in" } else { "out" }
                );
                return;
            }
            "--help" | "-h" => {
                println!(
                    "repro [--quick] [--seed N] [--out DIR] [--trace-out PATH] \
                     [--metrics-out PATH] [--telemetry-status] [--phase-profile] \
                     [--bench-compare FRESH.json [BASELINE.json...]] \
                     [--campaign SCENARIO.{{json,toml}}] \
                     [--forensics-out DIR] [--flight-topk N] \
                     [--validate-scenario SCENARIO.{{json,toml}}] \
                     [--chaos SCENARIO.{{json,toml}}] [--chaos-plans N] \
                     [--chaos-corpus DIR] [--chaos-canary] \
                     [--resilience] [EXPERIMENT...]\n\
                     experiments: table1 table2 table3 fig1 fig2a fig2b fig2c fig2d \
                     fig2e fig3 fig4 fig5 fig6 fig8 fig9 fig10 overhead mbox-scale all \
                     ablations fec crosstech uplink multiclient resilience\n\
                     --campaign runs a declarative scenario file's fleet campaign \
                     (sharded, checkpointable) and writes a JSON report plus a \
                     campaign-health JSONL time series under --out;\n\
                     --flight-topk N arms the flight recorder for the K worst calls \
                     (overrides the scenario's [observe] section);\n\
                     --forensics-out DIR re-simulates the worst calls and writes \
                     their Perfetto + JSONL timelines there;\n\
                     --validate-scenario parses + lowers a scenario file and prints \
                     the lowered configuration or a field-path error;\n\
                     --chaos fuzzes seeded adversarial fault plans against the \
                     paired no-amplification / MTTR / engine-panic oracles \
                     ([chaos] scenario section sets the budget), shrinks every \
                     violation to a minimal reproducer, and exits non-zero on \
                     violations;\n\
                     --chaos-plans N overrides the plan count (0 = replay the \
                     corpus only);\n\
                     --chaos-corpus DIR replays every committed reproducer in \
                     DIR first, then writes newly shrunk reproducers there;\n\
                     --chaos-canary plants a synthetic violation to prove the \
                     fuzzer finds and shrinks it (exits non-zero if it does NOT)."
                );
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    // Scenario-file modes run on their own and exit: validation first
    // (all requested files, worst exit code wins), then the campaign,
    // then the chaos scan.
    if !validate_paths.is_empty() || campaign_path.is_some() || chaos_path.is_some() {
        let mut code = 0;
        for p in &validate_paths {
            code = code.max(validate_scenario_cli(p));
        }
        if let Some(p) = &campaign_path {
            if code == 0 {
                code = campaign_cli(p, &out_dir, forensics_out.as_deref(), flight_topk);
            }
        }
        if let Some(p) = &chaos_path {
            if code == 0 {
                code = chaos_cli(
                    p,
                    &out_dir,
                    chaos_plans,
                    chaos_corpus.as_deref(),
                    chaos_canary,
                    forensics_out.as_deref(),
                );
            }
        }
        std::process::exit(code);
    }
    // With only telemetry flags given, run just the capture scenario.
    let telemetry_only =
        wanted.is_empty() && (trace_out.is_some() || metrics_out.is_some());
    const STANDARD: [&str; 18] = [
        "fig1", "table1", "table2", "fig2a", "fig2b", "fig2c", "fig2d", "fig2e", "fig3",
        "fig4", "fig5", "fig6", "fig8", "fig9", "fig10", "overhead", "table3", "mbox-scale",
    ];
    const EXTENSIONS: [&str; 6] =
        ["ablations", "fec", "crosstech", "uplink", "multiclient", "resilience"];
    if wanted.is_empty() {
        if !telemetry_only {
            wanted = STANDARD.iter().map(|s| s.to_string()).collect();
        }
    } else {
        // "all" expands in place to the paper's tables/figures;
        // "extensions" to the beyond-the-paper experiments.
        let mut expanded = Vec::new();
        for w in wanted {
            match w.as_str() {
                "all" => expanded.extend(STANDARD.iter().map(|s| s.to_string())),
                "extensions" => expanded.extend(EXTENSIONS.iter().map(|s| s.to_string())),
                _ => expanded.push(w),
            }
        }
        expanded.dedup();
        wanted = expanded;
    }

    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16);
    let mut ctx = Ctx { scale, seed, out_dir, threads, main_corpus: None, eval_corpus: None };

    if trace_out.is_some() || metrics_out.is_some() {
        telemetry_capture(&ctx, trace_out.as_deref(), metrics_out.as_deref());
    }

    // Experiments with a pass/fail verdict (resilience's no-amplification
    // rows) raise the exit code; the worst verdict wins.
    let mut exit_code = 0;
    for exp in wanted {
        println!("\n================ {exp} ================");
        match exp.as_str() {
            "table1" => table1(&mut ctx),
            "table2" => table2(&mut ctx),
            "table3" => table3(&mut ctx),
            "fig1" => fig1(&mut ctx),
            "fig2a" => fig2(&mut ctx, "fig2a", &[(Strategy::CrossLink, "Cross-Link"), (Strategy::Stronger, "Stronger"), (Strategy::Better, "Better")]),
            "fig2b" => fig2(&mut ctx, "fig2b", &[(Strategy::CrossLink, "Cross-Link"), (Strategy::Divert, "Divert")]),
            "fig2c" => fig2(&mut ctx, "fig2c", &[(Strategy::CrossLink, "Cross-Link"), (Strategy::Temporal100, "Temporal (100ms)"), (Strategy::Temporal0, "Temporal (0ms)"), (Strategy::Stronger, "Baseline")]),
            "fig2d" => fig2d(&mut ctx),
            "fig2e" => fig2e(&mut ctx),
            "fig3" => fig3(&mut ctx),
            "fig4" => fig4(&mut ctx),
            "fig5" => fig5(&mut ctx),
            "fig6" => fig6(&mut ctx),
            "fig8" => fig8(&mut ctx),
            "fig9" => fig9(&mut ctx),
            "fig10" => fig10(&mut ctx),
            "overhead" => overhead(&mut ctx),
            "mbox-scale" => mbox_scale(&mut ctx),
            "ablations" => ablations(&mut ctx),
            "fec" => fec(&mut ctx),
            "crosstech" => crosstech(&mut ctx),
            "uplink" => uplink(&mut ctx),
            "multiclient" => multiclient(&mut ctx),
            "resilience" => exit_code = exit_code.max(resilience(&mut ctx)),
            other => eprintln!("unknown experiment: {other}"),
        }
    }
    if exit_code != 0 {
        std::process::exit(exit_code);
    }
}

/// Regression threshold for `--bench-compare`: a fresh benchmark slower
/// than its committed baseline by more than this fraction fails the
/// comparison (exit code 1).
const BENCH_REGRESSION_FRAC: f64 = 0.25;

/// Diff a fresh `BENCH_JSON` run against the committed `BENCH_*.json`
/// baselines, keyed by **(build tag, benchmark name)**.
///
/// Comparisons use `lo_ns` (the fastest observed sample): on shared,
/// noisy hosts the minimum is the stable signal — medians swing ±30%
/// with background load, minima only move when the code does.
///
/// Every line — fresh and baseline — must carry a `build` tag
/// (`"release"`, `"release+trace"`, ...) as emitted by the bench
/// harness. A fresh line whose tag has no baseline under the *same* tag
/// but does exist under a different one is a **build-tag mismatch** —
/// debug-vs-release or trace-vs-plain numbers would silently pass or
/// fail for the wrong reason — and fails the comparison outright.
/// Missing tags on either side are a hard error. Genuinely new
/// benchmark names (no baseline under any tag) are reported but never
/// fail. Returns the process exit code: 1 on any regression beyond
/// [`BENCH_REGRESSION_FRAC`] or any tag mismatch, 0 otherwise.
fn bench_compare(fresh_path: &str, baseline_paths: &[String]) -> i32 {
    fn load(path: &str) -> Vec<(String, String, f64)> {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("bench-compare: cannot read {path}: {e}"));
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| {
                let v: serde_json::Value = serde_json::from_str(l)
                    .unwrap_or_else(|e| panic!("bench-compare: bad JSON line in {path}: {e}"));
                let name = v
                    .get("name")
                    .and_then(|n| n.as_str())
                    .expect("bench line missing name")
                    .to_string();
                let build = v
                    .get("build")
                    .and_then(|b| b.as_str())
                    .unwrap_or_else(|| {
                        panic!(
                            "bench-compare: line for {name:?} in {path} carries no \"build\" \
                             tag; re-run the benches with the current harness (or re-record \
                             the baseline) — untagged numbers cannot be compared safely"
                        )
                    })
                    .to_string();
                let lo =
                    v.get("lo_ns").and_then(|n| n.as_f64()).expect("bench line missing lo_ns");
                (build, name, lo)
            })
            .collect()
    }

    // Default baselines: every committed BENCH_*.json in the working dir.
    let baseline_paths: Vec<String> = if baseline_paths.is_empty() {
        let mut found: Vec<String> = std::fs::read_dir(".")
            .expect("bench-compare: cannot list working directory")
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect();
        found.sort();
        assert!(!found.is_empty(), "bench-compare: no BENCH_*.json baselines found");
        found
    } else {
        baseline_paths.to_vec()
    };

    let mut baseline: std::collections::BTreeMap<(String, String), f64> =
        std::collections::BTreeMap::new();
    for path in &baseline_paths {
        for (build, name, lo) in load(path) {
            // Duplicate (build, name) across baseline files: slowest wins,
            // so re-recorded baselines stay conservative.
            let slot = baseline.entry((build, name)).or_insert(lo);
            *slot = slot.max(lo);
        }
    }

    let mut regressions = 0usize;
    let mut mismatches = 0usize;
    println!(
        "{:<44} {:<14} {:>12} {:>12} {:>8}  verdict",
        "benchmark", "build", "base lo_ns", "fresh lo_ns", "ratio"
    );
    for (build, name, fresh_lo) in load(fresh_path) {
        match baseline.get(&(build.clone(), name.clone())) {
            Some(&base_lo) => {
                let ratio = fresh_lo / base_lo;
                let verdict = if ratio > 1.0 + BENCH_REGRESSION_FRAC {
                    regressions += 1;
                    "REGRESSED"
                } else if ratio < 1.0 - BENCH_REGRESSION_FRAC {
                    "improved"
                } else {
                    "ok"
                };
                println!(
                    "{name:<44} {build:<14} {base_lo:>12.1} {fresh_lo:>12.1} {ratio:>8.2}  {verdict}"
                );
            }
            None => {
                let other_builds: Vec<&str> = baseline
                    .keys()
                    .filter(|(_, n)| *n == name)
                    .map(|(b, _)| b.as_str())
                    .collect();
                if other_builds.is_empty() {
                    println!(
                        "{name:<44} {build:<14} {:>12} {fresh_lo:>12.1} {:>8}  new (no baseline)",
                        "-", "-"
                    );
                } else {
                    mismatches += 1;
                    println!(
                        "{name:<44} {build:<14} {:>12} {fresh_lo:>12.1} {:>8}  BUILD MISMATCH \
                         (baseline has: {})",
                        "-",
                        "-",
                        other_builds.join(", ")
                    );
                }
            }
        }
    }
    if mismatches > 0 {
        eprintln!(
            "bench-compare: {mismatches} benchmark(s) built as a different build than every \
             baseline entry of the same name — refusing to compare across builds. Re-run the \
             benches with the matching feature set/profile, or re-record the baseline."
        );
    }
    if regressions > 0 {
        eprintln!(
            "bench-compare: {regressions} benchmark(s) regressed more than {:.0}% vs baseline",
            BENCH_REGRESSION_FRAC * 100.0
        );
    }
    if regressions > 0 || mismatches > 0 {
        1
    } else {
        0
    }
}

/// Load + parse a scenario file, reporting I/O and field-path parse
/// errors on stderr. `.toml` files go through the TOML front-end,
/// everything else through JSON.
fn load_scenario(path: &str) -> Result<diversifi::Scenario, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    diversifi::Scenario::from_file_text(&text, path)
}

/// `repro --validate-scenario FILE`: parse, validate, and lower a
/// scenario file, then print the lowered configuration summary. Exit 0
/// on success, 2 with the field-path error on stderr otherwise.
fn validate_scenario_cli(path: &str) -> i32 {
    use diversifi::scenario::mode_tag;
    let scn = match load_scenario(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("validate-scenario: {e}");
            return 2;
        }
    };
    let cfg = scn.campaign_config();
    println!("[scenario] OK: {path}");
    println!("[scenario] name={:?} seed={} venue={}", scn.name, scn.seed, scn.venue.tag());
    for (label, ap) in [("primary", &scn.primary), ("secondary", &scn.secondary)] {
        println!(
            "[scenario] {label}: {} @ {:.1} m, {} link, {:.1} dBm, diversity x{}",
            diversifi::scenario::channel_tag(ap.channel),
            ap.distance_m,
            ap.quality.tag(),
            ap.tx_power_dbm,
            ap.diversity_order,
        );
    }
    println!(
        "[scenario] fleet: {} calls in {} shards of {} ({} threads, checkpoints: {})",
        scn.fleet.calls,
        cfg.shards(),
        cfg.shard_size,
        if scn.campaign.threads == 0 { "auto".to_string() } else { scn.campaign.threads.to_string() },
        scn.campaign.checkpoint_dir.as_deref().unwrap_or("off"),
    );
    let arms: Vec<String> =
        scn.arms.iter().map(|a| format!("{}:{}", a.name, mode_tag(a.mode))).collect();
    println!("[scenario] arms: [{}]", arms.join(", "));
    if !scn.faults.specs.is_empty() {
        println!("[scenario] faults: {} spec(s)", scn.faults.specs.len());
    }
    println!("[scenario] fingerprint: {:016x}", scn.fingerprint());
    0
}

/// A human calls/sec figure that degrades gracefully: campaigns that
/// finish inside one throttle interval (or resume everything from
/// checkpoints) print "—" instead of a nonsense billions-of-calls/s rate
/// from dividing by a near-zero elapsed time.
fn rate_str(calls: u64, secs: f64) -> String {
    if secs < 1e-3 || calls == 0 {
        "—".to_string()
    } else {
        format!("{:.0}", calls as f64 / secs)
    }
}

/// `repro --campaign FILE`: run the scenario's sharded fleet campaign
/// with live progress (including calls/sec) and health heartbeats, print
/// the campaign report, and write the JSON artifact plus the
/// campaign-health JSONL under `--out`. With `--flight-topk` /
/// `--forensics-out` (or a scenario `[observe]` section) the flight
/// recorder retains the K worst calls and re-simulates their full event
/// timelines. Exit 0 on success, 2 on parse/run failure.
fn campaign_cli(
    path: &str,
    out_dir: &str,
    forensics_out: Option<&str>,
    flight_topk: Option<usize>,
) -> i32 {
    let scn = match load_scenario(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("campaign: {e}");
            return 2;
        }
    };
    let mut cfg = scn.campaign_config();
    if let Some(k) = flight_topk {
        cfg.flight_k = k;
    }
    if forensics_out.is_some() && cfg.flight_k == 0 {
        // Forensics with nothing retained would be an empty dossier;
        // default to a useful handful.
        cfg.flight_k = 4;
    }
    println!(
        "[campaign] {:?}: {} calls, shard size {}, fingerprint {:016x}",
        scn.name,
        scn.fleet.calls,
        scn.campaign.shard_size.max(1),
        scn.fingerprint()
    );
    if let Some(dir) = &scn.campaign.checkpoint_dir {
        println!("[campaign] checkpoints: {dir}");
    }
    if cfg.flight_k > 0 {
        println!("[campaign] flight recorder: top-{} worst calls", cfg.flight_k);
    }

    let start = std::time::Instant::now();
    // Throttle progress lines to ~4/s; always print the final one.
    let last_print = std::sync::Mutex::new(None::<std::time::Instant>);
    let progress = |p: &diversifi_simcore::CampaignProgress| {
        let done = p.shards_done == p.shards_total;
        {
            let mut last = last_print.lock().unwrap();
            if !done
                && last.is_some_and(|t| t.elapsed() < std::time::Duration::from_millis(250))
            {
                return;
            }
            *last = Some(std::time::Instant::now());
        }
        let rate = rate_str(p.calls_done, start.elapsed().as_secs_f64());
        let pct = if p.calls_planned == 0 {
            100.0
        } else {
            100.0 * p.calls_done as f64 / p.calls_planned as f64
        };
        println!(
            "[campaign] {:>12}/{} calls ({pct:5.1}%)  shards {}/{} ({} resumed)  {rate} calls/s",
            p.calls_done, p.calls_planned, p.shards_done, p.shards_total, p.shards_resumed,
        );
    };
    // The heartbeat stream: every freshly executed shard appends one JSONL
    // record (written under --out after the run) and refreshes a throttled
    // live health line.
    let health_lines = std::sync::Mutex::new(Vec::<String>::new());
    let last_health = std::sync::Mutex::new(None::<std::time::Instant>);
    let heartbeat = |hb: &diversifi_simcore::HeartbeatSample| {
        let line = format!(
            "{{\"shard\":{},\"calls\":{},\"shard_wall_us\":{},\"checkpoint_write_us\":{},\
             \"shards_done\":{},\"shards_total\":{},\"calls_done\":{},\"elapsed_ms\":{}}}",
            hb.shard,
            hb.calls,
            hb.shard_wall_ns / 1_000,
            hb.checkpoint_write_ns / 1_000,
            hb.shards_done,
            hb.shards_total,
            hb.calls_done,
            hb.elapsed_ns / 1_000_000,
        );
        health_lines.lock().unwrap().push(line);
        {
            let mut last = last_health.lock().unwrap();
            if last.is_some_and(|t| t.elapsed() < std::time::Duration::from_millis(500)) {
                return;
            }
            *last = Some(std::time::Instant::now());
        }
        println!(
            "[health] shard {:>5} folded {} calls in {:.1} ms (ckpt {:.2} ms)  {} calls/s overall",
            hb.shard,
            hb.calls,
            hb.shard_wall_ns as f64 / 1e6,
            hb.checkpoint_write_ns as f64 / 1e6,
            rate_str(hb.calls_done, hb.elapsed_ns as f64 / 1e9),
        );
    };
    let run = match diversifi::run_fleet_campaign_observed(&scn, &cfg, progress, heartbeat) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign: {e}");
            return 2;
        }
    };
    let rep = &run.report;
    let elapsed = start.elapsed().as_secs_f64();

    println!(
        "[campaign] done in {elapsed:.2} s — {} calls, {} shards run, {} resumed, {} calls/s",
        rep.calls,
        rep.shards_run,
        rep.shards_resumed,
        rate_str(rep.calls, elapsed),
    );
    println!("[campaign] digest fingerprint: {:016x}", rep.fingerprint);
    println!(
        "[campaign] poor-call rate {:.3}%  MOS mean {:.3} ± {:.3}  p10/p50/p90 {:.3}/{:.3}/{:.3}",
        100.0 * rep.poor_rate,
        rep.mos_mean,
        rep.mos_stddev,
        rep.mos_p10,
        rep.mos_p50,
        rep.mos_p90,
    );
    println!(
        "[campaign] mouth-to-ear delay p50 {:.1} ms, p99 {:.1} ms",
        rep.delay_p50_ms, rep.delay_p99_ms
    );
    println!("[campaign] workload: {}", rep.workload);
    if let Some(fps) = &rep.fps {
        let mut t = TextTable::new(&["FPS fleet metric", "Value"]);
        t.row(&["Sessions".into(), fps.sessions.to_string()]);
        t.row(&["Poor-session rate (%)".into(), format!("{:.3}", 100.0 * fps.poor_rate)]);
        t.row(&["QoE mean ± std".into(), format!("{:.1} ± {:.1}", fps.qoe_mean, fps.qoe_stddev)]);
        t.row(&[
            "QoE p10 / p50 / p90".into(),
            format!("{:.1} / {:.1} / {:.1}", fps.qoe_p10, fps.qoe_p50, fps.qoe_p90),
        ]);
        t.row(&[
            "State-tick miss p50 / p99 (%)".into(),
            format!("{:.2} / {:.2}", fps.miss_p50_pct, fps.miss_p99_pct),
        ]);
        t.row(&[
            "Worst outage p50 / p99 (ms)".into(),
            format!("{:.1} / {:.1}", fps.outage_p50_ms, fps.outage_p99_ms),
        ]);
        println!("{}", t.render());
    }
    let mut t = TextTable::new(&["Subset", "EE", "EW", "WW"]);
    for (label, row) in [
        ("All", &rep.table1.all),
        ("/24s with #E>=#W", &rep.table1.wired_majority),
        ("PC", &rep.table1.pc),
        ("PC & /24s filter", &rep.table1.pc_wired_majority),
    ] {
        t.row(&[
            label.into(),
            signed_pct(row.ee),
            signed_pct(row.ew),
            signed_pct(row.ww),
        ]);
    }
    println!("{}", t.render());
    for arm in &rep.arms {
        let mut line = format!(
            "[campaign] arm {:<16} ({:<14}, {}) loss {:6.3}%  wasteful dup {:6.2}%  secondary air {:6.2}%",
            arm.name, arm.mode, arm.workload, arm.loss_pct, arm.wasteful_dup_pct,
            arm.secondary_air_pct
        );
        if let (Some(tm), Some(im), Some(q)) = (arm.tick_miss_pct, arm.input_miss_pct, arm.qoe) {
            line.push_str(&format!("  tick miss {tm:.2}%  input miss {im:.2}%  QoE {q:.1}"));
        }
        println!("{line}");
    }
    let h = &rep.health;
    println!(
        "[campaign] health: shard wall p50/p99 {}/{} µs, checkpoint p50 {} µs, merge {:.1} ms, \
         {} shards timed",
        h.shard_wall_p50_us,
        h.shard_wall_p99_us,
        h.checkpoint_write_p50_us,
        h.merge_ms,
        h.shards_timed,
    );
    if let Some(flight) = &rep.flight {
        for f in flight {
            println!(
                "[flight] worst call index {:>8}  score {:.3}  (seed {:#x})",
                f.index, f.score, f.seed
            );
        }
        if flight.is_empty() {
            println!("[flight] no calls fell below the poor trigger");
        }
    }

    let safe_name = rep.scenario.replace([' ', '/'], "_");
    let artifact = format!("campaign_{safe_name}");
    match report::write_json(out_dir, &artifact, rep) {
        Ok(p) => println!("[artifact] {p}"),
        Err(e) => {
            eprintln!("campaign: failed to write artifact: {e}");
            return 2;
        }
    }
    let lines = health_lines.into_inner().unwrap();
    if !lines.is_empty() {
        let path = format!("{out_dir}/campaign-health_{safe_name}.jsonl");
        let body = lines.join("\n") + "\n";
        if let Err(e) =
            std::fs::create_dir_all(out_dir).and_then(|()| std::fs::write(&path, body))
        {
            eprintln!("campaign: failed to write health series: {e}");
            return 2;
        }
        println!("[artifact] {path}");
    }

    if let Some(dir) = forensics_out {
        let worst = run.flight.as_ref().expect("flight_k > 0 when forensics requested");
        if worst.is_empty() {
            println!("[forensics] nothing to capture: no calls fell below the poor trigger");
        } else {
            if !diversifi_simcore::FLIGHT_COMPILED {
                eprintln!(
                    "[forensics] warning: release build without the `trace` feature — \
                     captures will carry scores but empty event timelines; \
                     rebuild with `--features trace`"
                );
            }
            let captures = diversifi::capture_worst_calls(&scn, worst, scn.observe.ring);
            let chrome = diversifi_simcore::export::flight_chrome_trace(&captures);
            let jsonl = diversifi_simcore::export::flight_jsonl(&captures);
            let base = format!("{dir}/flight_{safe_name}");
            let written = std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(format!("{base}.json"), chrome))
                .and_then(|()| std::fs::write(format!("{base}.jsonl"), jsonl));
            if let Err(e) = written {
                eprintln!("campaign: failed to write forensics: {e}");
                return 2;
            }
            println!(
                "[forensics] {} captures ({} calls × {} arms) → {base}.json (Perfetto), {base}.jsonl",
                captures.len(),
                worst.len(),
                scn.arms.len().max(1),
            );
        }
    }
    0
}

/// `repro --chaos SCENARIO`: the adversarial fault-plan fuzzing campaign.
///
/// Runs in two stages, either of which can be disabled:
///
/// 1. **Corpus replay** (`--chaos-corpus DIR`): every committed
///    `*.json` reproducer in DIR is replayed under the real oracles.
///    A replay violation means a fixed bug is back — hard failure.
/// 2. **Scan**: `plans` seeded plans (scenario `[chaos]` section,
///    `--chaos-plans` override; 0 skips the scan) are generated under
///    the budget and evaluated; retained violations are shrunk to
///    minimal reproducers, written to the corpus directory (when given)
///    and to the JSON artifact.
///
/// Exit code: 0 when clean, 1 on any violation / replay failure /
/// quarantined shard. Under `--chaos-canary` the verdict inverts for the
/// scan: the planted violation MUST be found (and shrink to its minimal
/// two-spec form) or the fuzzer itself is broken.
fn chaos_cli(
    path: &str,
    out_dir: &str,
    plans_override: Option<u64>,
    corpus_dir: Option<&str>,
    canary: bool,
    forensics_out: Option<&str>,
) -> i32 {
    use diversifi::chaos::{capture_reproducer, replay_reproducer, run_chaos, ChaosConfig};
    use diversifi_simcore::chaos::ChaosReproducer;
    use diversifi_simcore::export::write_text_atomic;

    let scn = match load_scenario(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("chaos: {e}");
            return 2;
        }
    };
    let mut cfg = ChaosConfig::from_scenario(&scn);
    cfg.canary = canary;
    if let Some(n) = plans_override {
        cfg.plans = n;
    }

    let mut code = 0;

    // Stage 1: replay the committed corpus (proptest-regressions style).
    if let Some(dir) = corpus_dir {
        let mut entries: Vec<std::path::PathBuf> = match std::fs::read_dir(dir) {
            Ok(rd) => rd
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "json"))
                .collect(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => {
                eprintln!("chaos: corpus dir {dir}: {e}");
                return 2;
            }
        };
        entries.sort();
        for p in &entries {
            let rep: ChaosReproducer = match std::fs::read_to_string(p)
                .map_err(|e| e.to_string())
                .and_then(|t| serde_json::from_str(&t).map_err(|e| e.to_string()))
            {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("chaos: corpus entry {}: {e}", p.display());
                    code = code.max(2);
                    continue;
                }
            };
            match replay_reproducer(&cfg, &rep) {
                None => println!(
                    "[chaos] corpus {} ({}, {} specs): clean",
                    p.file_name().unwrap_or_default().to_string_lossy(),
                    rep.oracle,
                    rep.plan.specs.len(),
                ),
                Some(v) => {
                    eprintln!(
                        "[chaos] corpus {} REGRESSED: {} — {}",
                        p.display(),
                        v.oracle,
                        v.detail
                    );
                    code = code.max(1);
                }
            }
        }
        println!("[chaos] corpus: {} reproducer(s) replayed", entries.len());
    }

    // Stage 2: the fuzzing scan.
    if cfg.plans == 0 {
        return code;
    }
    println!(
        "[chaos] {:?}: {} plans, horizon {:.1}s, max {} specs, seed {:#x}{}",
        scn.name,
        cfg.plans,
        cfg.budget.horizon.as_nanos() as f64 / 1e9,
        cfg.budget.max_specs,
        cfg.seed,
        if canary { " (planted canary)" } else { "" },
    );
    let report = match run_chaos(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos: {e}");
            return 2;
        }
    };
    println!(
        "[chaos] scanned {} plans ({} empty): {} violation(s) — \
         {} amplification, {} engine-panic, {} unbounded-MTTR",
        report.plans,
        report.empty_plans,
        report.violations,
        report.amplification,
        report.engine_panics,
        report.unbounded_mttr,
    );
    if let Some(fp) = report.fingerprint {
        println!("[chaos] scan fingerprint: {fp:016x}");
    }
    for q in &report.quarantined {
        eprintln!("[chaos] shard {q} quarantined (panic escaped per-plan capture)");
        code = code.max(1);
    }
    for f in &report.findings {
        println!(
            "[chaos] finding: plan {:06} {} — shrunk {} → {} spec(s) \
             ({} evals, {} accepted): {}",
            f.index,
            f.oracle,
            f.original_specs,
            f.minimal_specs,
            f.shrink_tried,
            f.shrink_accepted,
            f.detail,
        );
    }

    let safe_name = scn.name.replace([' ', '/'], "_");
    match report::write_json(out_dir, &format!("chaos_{safe_name}"), &report) {
        Ok(p) => println!("[artifact] {p}"),
        Err(e) => {
            eprintln!("chaos: failed to write artifact: {e}");
            return 2;
        }
    }

    // Newly shrunk reproducers join the corpus (committed by the
    // developer once triaged, like proptest-regressions files).
    if let Some(dir) = corpus_dir {
        for f in &report.findings {
            let name = format!("chaos-{:016x}-{:06}.json", f.reproducer.seed, f.reproducer.index);
            let text = serde_json::to_string_pretty(&f.reproducer)
                .expect("reproducer serialization cannot fail");
            let p = std::path::Path::new(dir).join(&name);
            if let Err(e) = write_text_atomic(&p, &(text + "\n")) {
                eprintln!("chaos: failed to write reproducer {}: {e}", p.display());
                return 2;
            }
            println!("[chaos] reproducer → {}", p.display());
        }
    }

    // Forensics: freeze both arms of the worst finding's minimal plan.
    if let Some(dir) = forensics_out {
        if let Some(f) = report.findings.first() {
            let captures = capture_reproducer(&cfg, &f.reproducer, scn.observe.ring);
            let chrome = diversifi_simcore::export::flight_chrome_trace(&captures);
            let jsonl = diversifi_simcore::export::flight_jsonl(&captures);
            let base = format!("{dir}/chaos_{safe_name}");
            let written = std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(format!("{base}.json"), chrome))
                .and_then(|()| std::fs::write(format!("{base}.jsonl"), jsonl));
            if let Err(e) = written {
                eprintln!("chaos: failed to write forensics: {e}");
                return 2;
            }
            println!("[forensics] worst finding (plan {:06}) → {base}.json, {base}.jsonl", f.index);
        } else {
            println!("[forensics] nothing to capture: no findings");
        }
    }

    if canary {
        // Canary semantics invert: finding (and fully shrinking) the
        // planted violation is the PASS condition.
        let minimal_ok = report
            .findings
            .iter()
            .all(|f| f.minimal_specs <= 2 && f.oracle == "no-amplification");
        if report.violations > 0 && !report.findings.is_empty() && minimal_ok && report.complete {
            println!(
                "[chaos] canary PASS: planted violation found and shrunk to \
                 {} spec(s)",
                report.findings[0].minimal_specs
            );
            code.max(0)
        } else {
            eprintln!(
                "[chaos] canary FAIL: violations={} findings={} complete={}",
                report.violations,
                report.findings.len(),
                report.complete
            );
            1
        }
    } else {
        if report.violations > 0 {
            eprintln!("[chaos] FAIL: {} violating plan(s)", report.violations);
            code = code.max(1);
        }
        if !report.complete {
            eprintln!("[chaos] FAIL: scan incomplete");
            code = code.max(1);
        }
        code
    }
}

/// Where does a paired three-arm run's time actually go? Runs the
/// `channel/three_arm_10s` bench workload (warm realization cache) with a
/// live telemetry session per arm and prints the Dispatch / ChannelSample
/// / MetricsReduce span breakdown — the profile behind the hot-path
/// optimisation notes in EXPERIMENTS.md. Needs `--features trace` in
/// release builds; without it the spans are compiled out.
fn phase_profile(seed: u64) {
    use diversifi::world::{RunMode, World, WorldConfig};
    use diversifi_simcore::telemetry::{Phase, PhaseProfile};
    use diversifi_wifi::RealizationCache;

    if !diversifi_simcore::telemetry::TRACE_COMPILED {
        eprintln!(
            "[phase-profile] warning: release build without the `trace` feature — \
             span totals will read zero; rebuild with `--features trace`"
        );
    }
    let a = LinkConfig::office(Channel::CH1, 16.0);
    let mut b = LinkConfig::office(Channel::CH11, 26.0);
    b.ge = GeParams::weak_link();
    let modes = [
        (RunMode::PrimaryOnly, "primary_only"),
        (RunMode::DiversifiCustomAp, "diversifi_custom_ap"),
        (RunMode::DiversifiMiddlebox, "diversifi_middlebox"),
    ];
    let seeds = SeedFactory::new(seed);
    let cache = RealizationCache::new(4);
    let mut total = PhaseProfile::default();
    println!("three_arm_10s phase profile (warm realization cache, 1 thread):");
    for (mode, label) in modes {
        let mut cfg = WorldConfig::testbed(a.clone(), b.clone());
        cfg.mode = mode;
        cfg.spec = StreamSpec::voip();
        cfg.spec.duration = SimDuration::from_secs(10);
        // Warm the cache so the profiled pass measures the event loop, not
        // channel materialisation (the sweep steady state).
        drop(World::new_cached(&cfg, &seeds, &cache));
        let wall = std::time::Instant::now();
        let (_, session) = World::new_cached(&cfg, &seeds, &cache).run_traced(1 << 16);
        let wall = wall.elapsed();
        println!("\n[{label}] wall {:.3} ms", wall.as_secs_f64() * 1e3);
        for phase in Phase::ALL {
            let s = session.profile.get(phase);
            println!(
                "  {:<16} {:>8} spans  {:>10.3} ms",
                phase.name(),
                s.calls,
                s.total_ns as f64 / 1e6
            );
        }
        total.merge(&session.profile);
    }
    println!("\n[total across arms]");
    for phase in Phase::ALL {
        let s = total.get(phase);
        println!(
            "  {:<16} {:>8} spans  {:>10.3} ms",
            phase.name(),
            s.calls,
            s.total_ns as f64 / 1e6
        );
    }
}

/// Capture one fully-instrumented paper scenario (§6 testbed weak pair,
/// customized-AP DiversiFi with a coexisting TCP flow) across a small sweep
/// and export the merged telemetry.
fn telemetry_capture(ctx: &Ctx, trace_out: Option<&str>, metrics_out: Option<&str>) {
    use diversifi::world::{RunMode, World, WorldConfig};
    use diversifi_simcore::export;

    if !diversifi_simcore::telemetry::TRACE_COMPILED {
        eprintln!(
            "[telemetry] warning: release build without the `trace` feature — the \
             capture will be empty; rebuild with `--features trace`"
        );
    }
    println!("\n================ telemetry ================");
    let mut primary = LinkConfig::office(Channel::CH1, 26.0);
    primary.ge = GeParams::weak_link();
    let mut secondary = LinkConfig::office(Channel::CH11, 30.0);
    secondary.ge = GeParams::weak_link();
    let mut cfg = WorldConfig::testbed(primary, secondary);
    cfg.mode = RunMode::DiversifiCustomAp;
    cfg.with_tcp = true;
    cfg.spec.duration = SimDuration::from_secs(ctx.scale.call_secs.min(30));
    let seeds = SeedFactory::new(ctx.seed ^ 0x7E1E);
    let (_, merged) = SweepRunner::available().run_indexed_traced(4, 1 << 16, |i| {
        World::new(&cfg, &seeds.subfactory("telemetry", i as u64)).run()
    });
    println!("{}", export::sweep_report(&merged));
    if let Some(path) = trace_out {
        match std::fs::write(path, export::chrome_trace(&merged)) {
            Ok(()) => println!("[artifact] {path} (Chrome trace — open at ui.perfetto.dev)"),
            Err(e) => eprintln!("[artifact] failed to write {path}: {e}"),
        }
        let sidecar = format!("{path}.jsonl");
        match std::fs::write(&sidecar, export::jsonl(&merged)) {
            Ok(()) => println!("[artifact] {sidecar} (event stream, one JSON object per line)"),
            Err(e) => eprintln!("[artifact] failed to write {sidecar}: {e}"),
        }
    }
    if let Some(path) = metrics_out {
        match std::fs::write(path, export::metrics_table(&merged.metrics)) {
            Ok(()) => println!("[artifact] {path} (per-sweep metrics table)"),
            Err(e) => eprintln!("[artifact] failed to write {path}: {e}"),
        }
    }
}

fn save<T: serde::Serialize>(ctx: &Ctx, name: &str, value: &T) {
    match report::write_json(&ctx.out_dir, name, value) {
        Ok(path) => println!("[artifact] {path}"),
        Err(e) => eprintln!("[artifact] failed to write {name}: {e}"),
    }
}

fn fig1(ctx: &mut Ctx) {
    let locations = survey::run_survey(6, ctx.seed);
    let summary = survey::summarize(&locations);
    let residential = survey::residential_multi_bssid_fraction(20_000, ctx.seed);
    let mut t = TextTable::new(&["Venue", "BSSIDs", "Channels"]);
    for loc in &locations {
        t.row(&[loc.venue.label().into(), loc.bssids.to_string(), loc.channels.to_string()]);
    }
    println!("{}", t.render());
    println!(
        "BSSIDs: median {} (range {}-{})   [paper: median 6, range 2-13]",
        summary.median_bssids, summary.min_bssids, summary.max_bssids
    );
    println!(
        "Channels: median {} (range {}-{}) [paper: median 4, range 2-9]",
        summary.median_channels, summary.min_channels, summary.max_channels
    );
    println!(
        "Residential homes with >1 BSSID: {:.0}% [paper: 30%]",
        residential * 100.0
    );
    save(ctx, "fig1", &(locations, summary, residential));
}

fn table1(ctx: &mut Ctx) {
    let calls = population::simulate_calls(&population::PopulationModel::default(), 400_000, ctx.seed);
    let t1 = population::table1(&calls);
    let mut t = TextTable::new(&["Subset", "EE", "EW", "WW"]);
    let paper = [
        ("All", "+27.7%", "+1.6%", "-18.4%"),
        ("/24s with #E>=#W", "+31.9%", "+6.3%", "-11.9%"),
        ("PC", "+34.2%", "+12.9%", "-5.4%"),
        ("PC & /24s filter", "+36.6%", "+15.1%", "-3.1%"),
    ];
    for (row, (label, pee, pew, pww)) in [
        &t1.all,
        &t1.wired_majority,
        &t1.pc,
        &t1.pc_wired_majority,
    ]
    .iter()
    .zip(paper)
    {
        t.row(&[
            label.into(),
            format!("{} [paper {pee}]", signed_pct(row.ee)),
            format!("{} [paper {pew}]", signed_pct(row.ew)),
            format!("{} [paper {pww}]", signed_pct(row.ww)),
        ]);
    }
    println!("{}", t.render());
    save(ctx, "table1", &t1);
}

fn table2(ctx: &mut Ctx) {
    let plan = nettest::NetTestPlan::default();
    let calls = nettest::simulate(&plan, ctx.seed);
    let t2 = nettest::table2(&calls, plan.n_clients);
    let paper = [5.22, 7.98, 42.11, 62.66];
    let mut t = TextTable::new(&["Call Type", "Total Calls", "PCR (%)", "Paper PCR (%)"]);
    for (row, p) in t2.rows.iter().zip(paper) {
        t.row(&[
            row.category.clone(),
            row.total_calls.to_string(),
            format!("{:.2}", row.pcr_pct),
            format!("{p:.2}"),
        ]);
    }
    t.row(&[
        "Total".into(),
        calls.len().to_string(),
        format!("{:.2}", t2.overall_pcr_pct),
        "10.23".into(),
    ]);
    println!("{}", t.render());
    println!(
        "Users with >=1 poor call: {:.1}% [paper 57.9%]; users with PCR>=20%: {:.1}% [paper 16.3%]",
        t2.users_with_poor_call_pct, t2.users_with_high_pcr_pct
    );
    save(ctx, "table2", &t2);
}

fn fig2(ctx: &mut Ctx, name: &str, strategies: &[(Strategy, &str)]) {
    let records: Vec<CallRecord> = ctx.main_corpus().to_vec();
    let mut series = Vec::new();
    let mut t = TextTable::new(&["Strategy", "90th %ile worst-5s loss (%)"]);
    for (s, label) in strategies {
        let cdf = strategy_cdf(&records, *s, label);
        t.row(&[label.to_string(), format!("{:.1}", cdf.p90)]);
        series.push(cdf);
    }
    println!("{}", t.render());
    match name {
        "fig2a" => println!("(paper: Stronger 37%, Better 84%, Cross-Link 4.4%)"),
        "fig2b" => println!("(paper: Divert 10.5% vs Cross-Link 4.4%)"),
        "fig2c" => println!("(paper: Baseline 37.2%, Temporal(100ms) 23.7%, Cross-Link 4.4%)"),
        _ => {}
    }
    save(ctx, name, &series);
}

fn fig2d(ctx: &mut Ctx) {
    let opts = ctx.scale.analysis(AnalysisOptions::mimo_corpus());
    let records = analysis::run_corpus(&opts, ctx.seed ^ 0xD);
    let mut series = Vec::new();
    let mut t = TextTable::new(&["Strategy (MIMO PHY)", "90th %ile worst-5s loss (%)"]);
    for (s, label) in [
        (Strategy::CrossLink, "MIMO + Cross-Link"),
        (Strategy::Stronger, "MIMO + Stronger"),
        (Strategy::Better, "MIMO + Better"),
    ] {
        let cdf = strategy_cdf(&records, s, label);
        t.row(&[label.to_string(), format!("{:.1}", cdf.p90)]);
        series.push(cdf);
    }
    println!("{}", t.render());
    println!("(paper: cross-link still clearly below MIMO-only selection)");
    save(ctx, "fig2d", &series);
}

fn fig2e(ctx: &mut Ctx) {
    let opts = ctx.scale.analysis(AnalysisOptions::high_rate_corpus());
    let records = analysis::run_corpus(&opts, ctx.seed ^ 0xE);
    let mut series = Vec::new();
    let mut t = TextTable::new(&["Strategy (5 Mbps stream)", "90th %ile worst-5s loss (%)"]);
    for (s, label) in [
        (Strategy::CrossLink, "Cross-Link"),
        (Strategy::Stronger, "Stronger"),
        (Strategy::Better, "Better"),
    ] {
        let cdf = strategy_cdf(&records, s, label);
        t.row(&[label.to_string(), format!("{:.1}", cdf.p90)]);
        series.push(cdf);
    }
    println!("{}", t.render());
    println!("(paper: Cross-Link 1.7% vs Stronger 20.5%)");
    save(ctx, "fig2e", &series);
}

fn fig3(ctx: &mut Ctx) {
    // Two weak links: the paper's example has link A at 4.3% overall loss,
    // link B at 15.4%, and cross-link replication at 0.88%. Scan seeds for
    // a comparable pair.
    let spec = StreamSpec::voip();
    // Scan seeds for the weak-link pair whose per-link loss rates best
    // match the paper's example (A: 4.3%, B: 15.4%). Each candidate seed is
    // independent, so the scan fans out on the sweep runner; keeping only
    // per-seed scores (rather than 64 full runs) bounds memory, and the
    // winner — first minimal score in seed order, same tie-break as the old
    // serial loop — is re-simulated once from its seed.
    let run_pair = |k: u64| {
        let seeds = SeedFactory::new(ctx.seed ^ (0xF3 + k));
        let mut a = LinkConfig::office(Channel::CH1, 30.0);
        a.ge = GeParams::weak_link();
        let mut b = LinkConfig::office(Channel::CH11, 36.0);
        b.ge = GeParams::weak_link();
        diversifi::run_two_nic(&diversifi::TwoNicScenario::new(spec, a, b), &seeds)
    };
    let scores = SweepRunner::available().run_indexed(64, |k| {
        let run = run_pair(k as u64);
        let la = run.a.trace.loss_rate(DEFAULT_DEADLINE) * 100.0;
        let lb = run.b.trace.loss_rate(DEFAULT_DEADLINE) * 100.0;
        let lm = run.a.trace.merged_with(&run.b.trace).loss_rate(DEFAULT_DEADLINE) * 100.0;
        ((la - 4.3).abs() + 0.5 * (lb - 15.4).abs(), la, lb, lm)
    });
    let mut best_k = 0usize;
    for (k, s) in scores.iter().enumerate() {
        if s.0 < scores[best_k].0 {
            best_k = k;
        }
    }
    let (_, la, lb, lm) = scores[best_k];
    let run = run_pair(best_k as u64);
    let merged = cross_link(
        &diversifi_client::LinkObservation { trace: run.a.trace.clone(), rssi_dbm: run.a.rssi_dbm },
        &diversifi_client::LinkObservation { trace: run.b.trace.clone(), rssi_dbm: run.b.rssi_dbm },
    );
    println!("Link A loss: {la:.2}%   [paper: 4.3%]");
    println!("Link B loss: {lb:.2}%   [paper: 15.4%]");
    println!("Cross-link:  {lm:.2}%   [paper: 0.88%]");
    let j = |tr: &diversifi_voip::StreamTrace| {
        let js = tr.jitter_series_ms();
        mean(&js.iter().map(|(_, v)| *v).collect::<Vec<_>>())
    };
    println!(
        "Mean per-packet jitter: A {:.2} ms, B {:.2} ms, merged {:.2} ms",
        j(&run.a.trace),
        j(&run.b.trace),
        j(&merged)
    );
    // Artifact: the loss positions + jitter series for plotting.
    let loss_positions = |tr: &diversifi_voip::StreamTrace| -> Vec<u64> {
        tr.loss_indicator(DEFAULT_DEADLINE)
            .iter()
            .enumerate()
            .filter(|(_, v)| **v > 0.0)
            .map(|(i, _)| i as u64)
            .collect()
    };
    save(
        ctx,
        "fig3",
        &serde_json::json!({
            "loss_pct": {"a": la, "b": lb, "merged": lm},
            "losses_a": loss_positions(&run.a.trace),
            "losses_b": loss_positions(&run.b.trace),
            "losses_merged": loss_positions(&merged),
            "jitter_a_ms": run.a.trace.jitter_series_ms(),
            "jitter_b_ms": run.b.trace.jitter_series_ms(),
            "jitter_merged_ms": merged.jitter_series_ms(),
        }),
    );
}

fn fig4(ctx: &mut Ctx) {
    let records: Vec<CallRecord> = ctx.main_corpus().to_vec();
    let fig = correlation_figure(&records, 20);
    let mut t = TextTable::new(&["Lag (pkts)", "Auto-corr", "Cross-corr"]);
    for lag in [1usize, 2, 5, 10, 15, 20] {
        t.row(&[
            lag.to_string(),
            format!("{:.3}", fig.auto_corr[lag - 1].1),
            format!("{:.3}", fig.cross_corr[lag].1),
        ]);
    }
    println!("{}", t.render());
    println!("(paper: auto-correlation stays above cross-correlation out to lag 20)");
    save(ctx, "fig4", &fig);
}

fn fig5(ctx: &mut Ctx) {
    let records: Vec<CallRecord> = ctx.main_corpus().to_vec();
    let rows = [
        burst_summary(&records, Strategy::Stronger, "Stronger"),
        burst_summary(&records, Strategy::Temporal100, "Temporal (100ms)"),
        burst_summary(&records, Strategy::CrossLink, "Cross-Link"),
    ];
    let mut t = TextTable::new(&["Strategy", "Mean lost/call", "Mean bursty/call"]);
    for r in &rows {
        t.row(&[r.label.clone(), format!("{:.1}", r.mean_lost), format!("{:.1}", r.mean_bursty)]);
    }
    println!("{}", t.render());
    println!("(paper: Cross-Link 25.6 lost / 15.9 bursty; Temporal 61.9 / 51.0)");
    save(ctx, "fig5", &rows);
}

fn fig6(ctx: &mut Ctx) {
    let records: Vec<CallRecord> = ctx.main_corpus().to_vec();
    let q = QualityParams::default();
    let fig = pcr_by_impairment(&records, &q);
    let mut t = TextTable::new(&["Impairment", "PCR Stronger (%)", "PCR Cross-Link (%)"]);
    for (label, s, x) in &fig.rows {
        t.row(&[label.clone(), format!("{s:.1}"), format!("{x:.1}")]);
    }
    println!("{}", t.render());
    let factor = if fig.overall_cross > 0.0 {
        fig.overall_stronger / fig.overall_cross
    } else {
        f64::INFINITY
    };
    println!(
        "Overall: Stronger {:.2}% vs Cross-Link {:.2}% → {:.2}x reduction [paper: 12.23% → 5.45%, 2.24x]",
        fig.overall_stronger, fig.overall_cross, factor
    );
    save(ctx, "fig6", &fig);
}

fn fig8(ctx: &mut Ctx) {
    let runs: Vec<EvalRun> = ctx.eval_corpus().to_vec();
    let window = SimDuration::from_secs(5);
    let mk = |pick: fn(&EvalRun) -> &diversifi::RunReport, label: &str| {
        let traces = arm_traces(&runs, pick);
        let e = metrics::worst_window_ecdf(&traces, window, DEFAULT_DEADLINE);
        (label.to_string(), e.quantile(0.9), e.series(0.0, 100.0, 101))
    };
    let d = mk(|r| &r.diversifi, "DiversiFi");
    let p = mk(|r| &r.primary, "Primary");
    let s = mk(|r| &r.secondary, "Secondary");
    let mut t = TextTable::new(&["Arm", "90th %ile worst-5s loss (%)", "Paper"]);
    t.row(&[d.0.clone(), format!("{:.1}", d.1), "1.2%".into()]);
    t.row(&[p.0.clone(), format!("{:.1}", p.1), "11.6%".into()]);
    t.row(&[s.0.clone(), format!("{:.1}", s.1), "52%".into()]);
    println!("{}", t.render());

    // PCR over the three arms (the 4.9% → 0% headline).
    let q = QualityParams::default();
    let pcr = |pick: fn(&EvalRun) -> &diversifi::RunReport| q.pcr_pct(&arm_traces(&runs, pick));
    println!(
        "PCR: primary {:.1}% [paper 4.9%], secondary {:.1}% [paper 26.2%], DiversiFi {:.1}% [paper 0%]",
        pcr(|r| &r.primary),
        pcr(|r| &r.secondary),
        pcr(|r| &r.diversifi)
    );
    save(ctx, "fig8", &[d, p, s]);
}

type ArmPick = fn(&EvalRun) -> &diversifi::RunReport;

fn fig9(ctx: &mut Ctx) {
    let runs: Vec<EvalRun> = ctx.eval_corpus().to_vec();
    let arms: [(&str, ArmPick); 3] = [
        ("Primary", |r| &r.primary),
        ("Secondary", |r| &r.secondary),
        ("DiversiFi", |r| &r.diversifi),
    ];
    let mut t = TextTable::new(&["Arm", "Mean lost/call", "Mean bursty/call"]);
    let mut artifacts = Vec::new();
    for (label, pick) in arms {
        let traces = arm_traces(&runs, pick);
        let (lost, bursty) = metrics::mean_loss_burst_split(&traces, DEFAULT_DEADLINE);
        let hist = metrics::burst_histogram(&traces, DEFAULT_DEADLINE);
        t.row(&[label.into(), format!("{lost:.1}"), format!("{bursty:.1}")]);
        artifacts.push((label, lost, bursty, hist.per_call_series(traces.len() as u64)));
    }
    println!("{}", t.render());
    println!("(paper: primary 44.3 lost / 35.9 bursty; DiversiFi 2.7 / 0.9)");
    save(ctx, "fig9", &artifacts);
}

fn fig10(ctx: &mut Ctx) {
    let n = (26 / ctx.scale.corpus_divisor).max(4);
    let pairs = run_tcp_corpus(n, ctx.threads, ctx.seed ^ 0x10);
    let diffs_kbps: Vec<f64> =
        pairs.iter().map(|p| (p.off_bps - p.on_bps) / 1000.0).collect();
    let off = mean(&pairs.iter().map(|p| p.off_bps).collect::<Vec<_>>());
    let on = mean(&pairs.iter().map(|p| p.on_bps).collect::<Vec<_>>());
    let e = Ecdf::new(diffs_kbps.clone());
    println!(
        "TCP throughput: DiversiFi off {:.2} Mbps, on {:.2} Mbps → {:.1}% impact [paper: 4.0 vs 3.9 Mbps, 2.5%]",
        off / 1e6,
        on / 1e6,
        100.0 * (off - on) / off
    );
    println!(
        "Difference distribution (kbps): median {:.0}, p10 {:.0}, p90 {:.0}",
        e.quantile(0.5),
        e.quantile(0.1),
        e.quantile(0.9)
    );
    save(ctx, "fig10", &(diffs_kbps, off, on));
}

fn overhead(ctx: &mut Ctx) {
    let runs: Vec<EvalRun> = ctx.eval_corpus().to_vec();
    let o = overhead_summary(&runs);
    let mut t = TextTable::new(&["Metric", "Measured", "Paper"]);
    t.row(&["Primary-only loss (%)".into(), format!("{:.2}", o.primary_loss_pct), "1.97".into()]);
    t.row(&["DiversiFi residual loss (%)".into(), format!("{:.2}", o.diversifi_loss_pct), "0.05".into()]);
    t.row(&["Wasteful duplication (%)".into(), format!("{:.2}", o.wasteful_dup_pct), "0.62".into()]);
    t.row(&["All secondary-air tx (%)".into(), format!("{:.2}", o.secondary_air_pct), "~2-3 (vs 100 naive)".into()]);
    println!("{}", t.render());
    save(ctx, "overhead", &o);
}

fn table3(ctx: &mut Ctx) {
    let samples = 100 / ctx.scale.corpus_divisor.clamp(1, 4);
    let ap = table3_row(&measure_switch_delays(RunMode::DiversifiCustomAp, samples, ctx.seed ^ 0x73));
    let mb = table3_row(&measure_switch_delays(RunMode::DiversifiMiddlebox, samples, ctx.seed ^ 0x73));
    let mut t = TextTable::new(&["Scheme", "Total", "Switching", "Network", "Queuing"]);
    t.row(&[
        "Middlebox".into(),
        format!("{:.1} [5.2]", mb.total_ms),
        format!("{:.1} [2.3]", mb.switching_ms),
        format!("{:.1} [2]", mb.network_ms),
        format!("{:.1} [0.9]", mb.queuing_ms),
    ]);
    t.row(&[
        "AP".into(),
        format!("{:.1} [2.8]", ap.total_ms),
        format!("{:.1} [2.3]", ap.switching_ms),
        format!("{:.1} [0.5]", ap.network_ms),
        "- [-]".into(),
    ]);
    println!("{}", t.render());
    println!("(ms; [paper values] — Table 3)");
    save(ctx, "table3", &(ap, mb));
}

fn mbox_scale(ctx: &mut Ctx) {
    let sweep = middlebox_scalability(&[0, 100, 250, 500, 750, 1000]);
    let mut t = TextTable::new(&["Concurrent streams", "Recovery delay (ms)"]);
    for (n, ms) in &sweep {
        t.row(&[n.to_string(), format!("{ms:.2}")]);
    }
    println!("{}", t.render());
    let delta = sweep.last().unwrap().1 - sweep.first().unwrap().1;
    println!("Δ(0 → 1000 streams) = {delta:.2} ms [paper: 1.1 ms]");
    save(ctx, "mbox_scale", &sweep);
}


fn ablations(ctx: &mut Ctx) {
    use diversifi::ablation;
    let n = (16 / ctx.scale.corpus_divisor).max(4);

    println!("Queue discipline (residual loss % / wasteful dup %):");
    let mut t = TextTable::new(&["Discipline", "Loss (%)", "Waste (%)", "Visits"]);
    let qrows = ablation::queue_discipline_ablation(n, ctx.seed ^ 0xAB);
    for (label, p) in &qrows {
        t.row(&[label.clone(), format!("{:.2}", p.loss_pct), format!("{:.2}", p.waste_pct), format!("{:.1}", p.visits)]);
    }
    println!("{}", t.render());

    println!("Wake batch:");
    let mut t = TextTable::new(&["Batch", "Loss (%)", "Waste (%)"]);
    let brows = ablation::wake_batch_ablation(n, ctx.seed ^ 0xAC);
    for p in &brows {
        t.row(&[format!("{:.0}", p.x), format!("{:.2}", p.loss_pct), format!("{:.2}", p.waste_pct)]);
    }
    println!("{}", t.render());

    println!("Visit safety margin (ms):");
    let mut t = TextTable::new(&["Margin", "Loss (%)", "Waste (%)"]);
    let mrows = ablation::visit_margin_ablation(n, ctx.seed ^ 0xAD);
    for p in &mrows {
        t.row(&[format!("{:.0}", p.x), format!("{:.2}", p.loss_pct), format!("{:.2}", p.waste_pct)]);
    }
    println!("{}", t.render());

    println!("Keepalive period (s) vs keepalive visits:");
    let mut t = TextTable::new(&["Period", "Keepalive visits", "Waste (%)"]);
    let krows = ablation::keepalive_ablation(n, ctx.seed ^ 0xAE);
    for p in &krows {
        t.row(&[format!("{:.0}", p.x), format!("{:.1}", p.visits), format!("{:.2}", p.waste_pct)]);
    }
    println!("{}", t.render());
    save(ctx, "ablations", &(qrows, brows, mrows, krows));
}

fn fec(ctx: &mut Ctx) {
    use diversifi::twonic::{run_fec, run_single, run_two_nic};
    let mut spec = StreamSpec::voip();
    spec.duration = SimDuration::from_secs(ctx.scale.call_secs);
    let n = (40 / ctx.scale.corpus_divisor).max(6);
    // Each seed's four schemes share one SeedFactory (paired channel
    // realisations); seeds are independent, so they fan out on the runner.
    let rows = SweepRunner::available().run_indexed(n, |i| {
        let seeds = SeedFactory::new(ctx.seed ^ 0xFEC ^ i as u64);
        let mut a = LinkConfig::office(Channel::CH1, 26.0);
        a.ge = GeParams::weak_link();
        let mut b = LinkConfig::office(Channel::CH11, 30.0);
        b.ge = GeParams::weak_link();
        let base = run_single(&spec, &a, &seeds, 0).trace.loss_rate(DEFAULT_DEADLINE) * 100.0;
        let fec4 = run_fec(&spec, &a, &seeds, 4).loss_rate(DEFAULT_DEADLINE) * 100.0;
        let fec8 = run_fec(&spec, &a, &seeds, 8).loss_rate(DEFAULT_DEADLINE) * 100.0;
        let two = run_two_nic(&diversifi::TwoNicScenario::new(spec, a, b), &seeds);
        let cross = two.a.trace.merged_with(&two.b.trace).loss_rate(DEFAULT_DEADLINE) * 100.0;
        (base, fec4, fec8, cross)
    });
    let base: Vec<f64> = rows.iter().map(|r| r.0).collect();
    let fec4: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let fec8: Vec<f64> = rows.iter().map(|r| r.2).collect();
    let cross: Vec<f64> = rows.iter().map(|r| r.3).collect();
    let mut t = TextTable::new(&["Scheme", "Mean loss (%)", "Overhead (extra tx)"]);
    t.row(&["Single link".into(), format!("{:.2}", mean(&base)), "0%".into()]);
    t.row(&["FEC k=4".into(), format!("{:.2}", mean(&fec4)), "25% always".into()]);
    t.row(&["FEC k=8".into(), format!("{:.2}", mean(&fec8)), "12.5% always".into()]);
    t.row(&["Cross-link (2 NIC)".into(), format!("{:.2}", mean(&cross)), "100% naive / ~1% DiversiFi".into()]);
    println!("{}", t.render());
    println!("(single-link coding cannot beat cross-link diversity under bursty loss — §2)");
    save(ctx, "fec", &(base, fec4, fec8, cross));
}

fn crosstech(ctx: &mut Ctx) {
    use diversifi::crosstech::{run_cross_technology, CellularConfig};
    use diversifi::twonic::run_two_nic;
    use diversifi_wifi::MicrowaveOven;
    let mut spec = StreamSpec::voip();
    spec.duration = SimDuration::from_secs(ctx.scale.call_secs);
    let n = (20 / ctx.scale.corpus_divisor).max(4);
    let rows = SweepRunner::available().run_indexed(n, |i| {
        let seeds = SeedFactory::new(ctx.seed ^ 0xC7 ^ i as u64);
        let oven = MicrowaveOven::default();
        let mut a = LinkConfig::office(Channel::CH6, 14.0);
        a.microwave = Some(oven);
        let mut b = LinkConfig::office(Channel::CH11, 18.0);
        b.microwave = Some(oven);
        let two = run_two_nic(&diversifi::TwoNicScenario::new(spec, a.clone(), b), &seeds);
        let ww = two.a.trace.merged_with(&two.b.trace).loss_rate(DEFAULT_DEADLINE) * 100.0;
        let xt = run_cross_technology(&spec, &a, &CellularConfig::default(), &seeds);
        (ww, xt.merged.loss_rate(DEFAULT_DEADLINE) * 100.0)
    });
    let ww: Vec<f64> = rows.iter().map(|r| r.0).collect();
    let wc: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let mut t = TextTable::new(&["Replication", "Mean loss under microwave (%)"]);
    t.row(&["WiFi + WiFi (both 2.4 GHz)".into(), format!("{:.2}", mean(&ww))]);
    t.row(&["WiFi + LTE (cross-technology)".into(), format!("{:.2}", mean(&wc))]);
    println!("{}", t.render());
    println!("(§4.4's deferred experiment: cross-technology diversity escapes band-wide interference)");
    save(ctx, "crosstech", &(ww, wc));
}

fn uplink(ctx: &mut Ctx) {
    use diversifi::uplink::{run_uplink, UplinkMode};
    let mut spec = StreamSpec::voip();
    spec.duration = SimDuration::from_secs(ctx.scale.call_secs);
    let n = (20 / ctx.scale.corpus_divisor).max(4);
    let rows = SweepRunner::available().run_indexed(n, |i| {
        let seeds = SeedFactory::new(ctx.seed ^ 0x0B ^ i as u64);
        let mut a = LinkConfig::office(Channel::CH1, 24.0);
        a.ge = GeParams::weak_link();
        let mut b = LinkConfig::office(Channel::CH11, 28.0);
        b.ge = GeParams::weak_link();
        let (ts, _) = run_uplink(&spec, &a, &b, &seeds, UplinkMode::SingleLink);
        let (td, st) = run_uplink(&spec, &a, &b, &seeds, UplinkMode::Diversifi);
        (
            ts.loss_rate(DEFAULT_DEADLINE) * 100.0,
            td.loss_rate(DEFAULT_DEADLINE) * 100.0,
            st.recovered,
            st.primary_failures,
        )
    });
    let single: Vec<f64> = rows.iter().map(|r| r.0).collect();
    let dvf: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let recovered: u64 = rows.iter().map(|r| r.2).sum();
    let failures: u64 = rows.iter().map(|r| r.3).sum();
    let mut t = TextTable::new(&["Uplink mode", "Mean loss (%)"]);
    t.row(&["Single link".into(), format!("{:.2}", mean(&single))]);
    t.row(&["DiversiFi (retransmit on secondary)".into(), format!("{:.2}", mean(&dvf))]);
    println!("{}", t.render());
    println!(
        "Recovered {recovered}/{failures} primary failures; zero wasted duplicates \
         (the client knows each frame's fate from the MAC ACK — §5's 'easier direction')"
    );
    save(ctx, "uplink", &(single, dvf));
}

fn multiclient(ctx: &mut Ctx) {
    use diversifi::multiworld::fleet_sweep;
    let mut spec = StreamSpec::voip();
    spec.duration = SimDuration::from_secs(ctx.scale.call_secs.min(60));
    let mut t = TextTable::new(&["Fleet size", "Mean loss baseline (%)", "Mean loss DiversiFi (%)", "Secondary air tx / client"]);
    let mut artifact = Vec::new();
    let rows = fleet_sweep(&[2, 6, 12], spec, |n| ctx.seed ^ 0x31 ^ n as u64);
    for (n, base, dvf) in rows {
        let per_client = dvf.secondary_air_tx as f64 / n as f64;
        t.row(&[
            n.to_string(),
            format!("{:.2}", base.mean_loss() * 100.0),
            format!("{:.2}", dvf.mean_loss() * 100.0),
            format!("{per_client:.0}"),
        ]);
        artifact.push((n, base.mean_loss(), dvf.mean_loss(), per_client));
    }
    println!("{}", t.render());
    println!("(everyone running DiversiFi at once: recovery still works under shared airtime)");
    save(ctx, "multiclient", &artifact);
}

/// `--resilience` — the deterministic fault catalogue, run paired: each
/// seed simulates a primary-only baseline and a DiversiFi arm on the same
/// channel realisation with the same fault plan. The report covers both
/// sides of the degradation contract: what the faults cost (loss,
/// worst-window loss, MOS) and how recovery behaved (MTTR from the fault
/// engine, degraded-mode time, probes, duplicate overhead).
/// Per-seed no-amplification gate for `--resilience`, in loss / tick-miss
/// percentage points: DiversiFi beyond `baseline + 2pp` on any paired
/// realisation is a hard failure (non-zero exit). Small sub-gate jitter
/// between the arms is expected on weak paired links; a 2pp excursion is
/// not.
const AMPLIFICATION_GATE_PP: f64 = 2.0;

fn resilience(ctx: &mut Ctx) -> i32 {
    use diversifi::world::{World, WorldConfig};
    use diversifi_simcore::{FaultKind, FaultPlan, SimTime};
    use diversifi_voip::emodel::mos_from_stats;
    use diversifi_voip::{burst_ratio, CodecModel, StreamTrace};

    let at = |s: u64| SimTime::ZERO + SimDuration::from_secs(s);
    let ms = SimDuration::from_millis;
    let scenarios: Vec<(&str, RunMode, FaultPlan)> = vec![
        (
            "primary_ap_reboot",
            RunMode::DiversifiCustomAp,
            FaultPlan::single_ap_reboot(0, at(8), SimDuration::from_secs(2)),
        ),
        (
            "secondary_ap_flap",
            RunMode::DiversifiCustomAp,
            FaultPlan::none().with(
                at(6),
                FaultKind::ApFlap { ap: 1, down: ms(1200), up: ms(1800), cycles: 3 },
            ),
        ),
        (
            "secondary_blackout",
            RunMode::DiversifiCustomAp,
            FaultPlan::single_ap_reboot(1, at(5), SimDuration::from_secs(10)),
        ),
        (
            "middlebox_restart",
            RunMode::DiversifiMiddlebox,
            FaultPlan::none().with(
                at(8),
                FaultKind::MiddleboxRestart { outage: ms(1500), reinstall_delay: ms(400) },
            ),
        ),
        (
            "brownout",
            RunMode::DiversifiCustomAp,
            FaultPlan::none().with(
                at(6),
                FaultKind::Brownout {
                    duration: SimDuration::from_secs(4),
                    extra_delay: ms(12),
                    control_loss: 0.6,
                },
            ),
        ),
        (
            "uplink_outage",
            RunMode::DiversifiCustomAp,
            FaultPlan::none()
                .with(at(8), FaultKind::UplinkOutage { duration: SimDuration::from_secs(2) }),
        ),
        (
            "interference_storm",
            RunMode::DiversifiCustomAp,
            FaultPlan::none().with(
                at(6),
                FaultKind::InterferenceStorm {
                    duration: SimDuration::from_secs(4),
                    erasure: 0.35,
                    link: None,
                },
            ),
        ),
    ];
    // Every fault above clears by t=16s; the clamp keeps a healthy tail for
    // recovery even at `--quick` scale.
    let n = (12 / ctx.scale.corpus_divisor).max(4) as u64;
    let secs = ctx.scale.call_secs.clamp(20, 32);
    let seed = ctx.seed;

    struct Rec {
        si: usize,
        loss_b: f64,
        loss_d: f64,
        mttr_ms: Vec<f64>,
        unrecovered: usize,
        degraded_ms: f64,
        probes: u64,
        air: u64,
        dups: u64,
        trace_b: StreamTrace,
        trace_d: StreamTrace,
    }

    let tasks: Vec<(usize, u64)> =
        (0..scenarios.len()).flat_map(|si| (0..n).map(move |k| (si, k))).collect();
    let rows = SweepRunner::new(ctx.threads).run(&tasks, |_, &(si, k)| {
        let (_, mode, plan) = &scenarios[si];
        let mut a = LinkConfig::office(Channel::CH1, 22.0);
        a.ge = GeParams::weak_link();
        let mut b = LinkConfig::office(Channel::CH11, 28.0);
        b.ge = GeParams::weak_link();
        let mut base = WorldConfig::testbed(a, b);
        base.mode = RunMode::PrimaryOnly;
        base.spec.duration = SimDuration::from_secs(secs);
        base.faults = plan.clone();
        let mut dvf = base.clone();
        dvf.mode = *mode;
        let s = SeedFactory::new(seed ^ 0x5E511E ^ ((si as u64) << 32) ^ k);
        let rb = World::new(&base, &s).run();
        let rd = World::new(&dvf, &s).run();
        Rec {
            si,
            loss_b: rb.trace.loss_rate(DEFAULT_DEADLINE) * 100.0,
            loss_d: rd.trace.loss_rate(DEFAULT_DEADLINE) * 100.0,
            mttr_ms: rd
                .fault_outcomes
                .iter()
                .filter_map(|o| o.mttr())
                .map(|d| d.as_millis_f64())
                .collect(),
            unrecovered: rd.fault_outcomes.iter().filter(|o| o.recovered_at.is_none()).count(),
            degraded_ms: rd.alg_stats.degraded_ns as f64 / 1e6,
            probes: rd.alg_stats.probe_visits,
            air: rd.secondary_air_tx,
            dups: rd.alg_stats.duplicate_packets,
            trace_b: rb.trace,
            trace_d: rd.trace,
        }
    });

    // MOS from the trace's own loss/burst structure, with a nominal 60 ms
    // of non-network (codec + playout) delay on both arms.
    let mos = |tr: &StreamTrace| {
        let ind = tr.loss_indicator(DEFAULT_DEADLINE);
        let mut bursts = Vec::new();
        let mut run = 0usize;
        for v in &ind {
            if *v > 0.0 {
                run += 1;
            } else if run > 0 {
                bursts.push(run);
                run = 0;
            }
        }
        if run > 0 {
            bursts.push(run);
        }
        let loss = tr.loss_rate(DEFAULT_DEADLINE);
        let br = burst_ratio(&bursts, loss);
        mos_from_stats(&CodecModel::g711_plc(), loss * 100.0, br, 60.0).mos
    };

    let window = SimDuration::from_secs(5);
    let mut quality_t = TextTable::new(&[
        "Scenario",
        "Loss base (%)",
        "Loss DVF (%)",
        "p90 worst-5s base (%)",
        "p90 worst-5s DVF (%)",
        "MOS base",
        "MOS DVF",
    ]);
    let mut recovery_t = TextTable::new(&[
        "Scenario",
        "Mean MTTR (ms)",
        "Unrecovered",
        "Degraded (ms/run)",
        "Probes/run",
        "2nd-air tx/run",
        "Dups/run",
    ]);
    let mut artifact = Vec::new();
    let (mut pairs, mut amplified) = (0usize, 0usize);
    let mut gate_failures: Vec<String> = Vec::new();
    for (si, (label, _, _)) in scenarios.iter().enumerate() {
        let rs: Vec<&Rec> = rows.iter().filter(|r| r.si == si).collect();
        let fvec = |f: &dyn Fn(&Rec) -> f64| rs.iter().map(|r| f(r)).collect::<Vec<f64>>();
        let lb = mean(&fvec(&|r| r.loss_b));
        let ld = mean(&fvec(&|r| r.loss_d));
        let tb: Vec<StreamTrace> = rs.iter().map(|r| r.trace_b.clone()).collect();
        let td: Vec<StreamTrace> = rs.iter().map(|r| r.trace_d.clone()).collect();
        let w5b = metrics::worst_window_ecdf(&tb, window, DEFAULT_DEADLINE).quantile(0.9);
        let w5d = metrics::worst_window_ecdf(&td, window, DEFAULT_DEADLINE).quantile(0.9);
        let mos_b = mean(&tb.iter().map(&mos).collect::<Vec<_>>());
        let mos_d = mean(&td.iter().map(&mos).collect::<Vec<_>>());
        let mttrs: Vec<f64> = rs.iter().flat_map(|r| r.mttr_ms.iter().copied()).collect();
        let mttr = if mttrs.is_empty() { f64::NAN } else { mean(&mttrs) };
        let unrecovered: usize = rs.iter().map(|r| r.unrecovered).sum();
        let degraded = mean(&fvec(&|r| r.degraded_ms));
        let probes = mean(&fvec(&|r| r.probes as f64));
        let air = mean(&fvec(&|r| r.air as f64));
        let dups = mean(&fvec(&|r| r.dups as f64));
        pairs += rs.len();
        amplified += rs.iter().filter(|r| r.loss_d > r.loss_b).count();
        for r in rs.iter().filter(|r| r.loss_d > r.loss_b + AMPLIFICATION_GATE_PP) {
            gate_failures.push(format!(
                "[voip] {label}: loss {:.2}% vs primary-only {:.2}% (gate {AMPLIFICATION_GATE_PP}pp)",
                r.loss_d, r.loss_b
            ));
        }
        quality_t.row(&[
            label.to_string(),
            format!("{lb:.2}"),
            format!("{ld:.2}"),
            format!("{w5b:.1}"),
            format!("{w5d:.1}"),
            format!("{mos_b:.2}"),
            format!("{mos_d:.2}"),
        ]);
        recovery_t.row(&[
            label.to_string(),
            if mttr.is_nan() { "-".into() } else { format!("{mttr:.0}") },
            unrecovered.to_string(),
            format!("{degraded:.0}"),
            format!("{probes:.1}"),
            format!("{air:.0}"),
            format!("{dups:.1}"),
        ]);
        artifact.push(serde_json::json!({
            "scenario": label,
            "loss_base_pct": lb,
            "loss_diversifi_pct": ld,
            "p90_worst5s_base_pct": w5b,
            "p90_worst5s_diversifi_pct": w5d,
            "mos_base": mos_b,
            "mos_diversifi": mos_d,
            "mean_mttr_ms": if mttr.is_nan() { None } else { Some(mttr) },
            "unrecovered_faults": unrecovered,
            "mean_degraded_ms": degraded,
            "mean_probe_visits": probes,
            "mean_secondary_air_tx": air,
            "mean_duplicates": dups,
            "per_seed_loss_pct": rs.iter().map(|r| (r.loss_b, r.loss_d)).collect::<Vec<_>>(),
        }));
    }
    println!("[voip] Fault impact ({n} seeds/scenario, {secs} s calls, paired realisations):");
    println!("{}", quality_t.render());
    println!("[voip] Recovery behaviour (DiversiFi arm):");
    println!("{}", recovery_t.render());
    println!(
        "[voip] DiversiFi loss <= primary-only loss on {}/{pairs} scenario-seed pairs",
        pairs - amplified
    );

    // ---- FPS workload pass: the same fault catalogue driven through the
    // cloud-gaming workload. Quality is per-tick deadline compliance (state
    // downlink + input uplink) and the deadline-based session QoE instead
    // of MOS.
    use diversifi_voip::{FpsConfig, WorkloadKind};
    let mut fps_knobs = FpsConfig::office();
    fps_knobs.duration = SimDuration::from_secs(secs);

    struct FpsRec {
        si: usize,
        miss_b: f64,
        miss_d: f64,
        input_miss_d: f64,
        blackout_d: u64,
        outage_b: u64,
        outage_d: u64,
        qoe_b: f64,
        qoe_d: f64,
    }

    let fps_rows = SweepRunner::new(ctx.threads).run(&tasks, |_, &(si, k)| {
        let (_, mode, plan) = &scenarios[si];
        let mut a = LinkConfig::office(Channel::CH1, 22.0);
        a.ge = GeParams::weak_link();
        let mut b = LinkConfig::office(Channel::CH11, 28.0);
        b.ge = GeParams::weak_link();
        let mut base = WorldConfig::testbed(a, b);
        base.mode = RunMode::PrimaryOnly;
        base.set_workload(WorkloadKind::Fps(fps_knobs));
        base.faults = plan.clone();
        let mut dvf = base.clone();
        dvf.mode = *mode;
        let s = SeedFactory::new(seed ^ 0xF5511E ^ ((si as u64) << 32) ^ k);
        let ob = *World::new(&base, &s).run().workload.fps().expect("fps outcome");
        let od = *World::new(&dvf, &s).run().workload.fps().expect("fps outcome");
        FpsRec {
            si,
            miss_b: 100.0 * ob.state.miss_rate(),
            miss_d: 100.0 * od.state.miss_rate(),
            input_miss_d: 100.0 * od.input.miss_rate(),
            blackout_d: od.input_blackout,
            outage_b: ob.state.longest_outage_ticks,
            outage_d: od.state.longest_outage_ticks,
            qoe_b: ob.qoe,
            qoe_d: od.qoe,
        }
    });

    let mut fps_t = TextTable::new(&[
        "Scenario",
        "Tick miss base (%)",
        "Tick miss DVF (%)",
        "Input miss DVF (%)",
        "Blackout ticks/run",
        "Worst outage base/DVF (ticks)",
        "QoE base",
        "QoE DVF",
    ]);
    let mut fps_artifact = Vec::new();
    let (mut fps_pairs, mut fps_amplified) = (0usize, 0usize);
    for (si, (label, _, _)) in scenarios.iter().enumerate() {
        let rs: Vec<&FpsRec> = fps_rows.iter().filter(|r| r.si == si).collect();
        let fvec = |f: &dyn Fn(&FpsRec) -> f64| rs.iter().map(|r| f(r)).collect::<Vec<f64>>();
        let mb = mean(&fvec(&|r| r.miss_b));
        let md = mean(&fvec(&|r| r.miss_d));
        let imd = mean(&fvec(&|r| r.input_miss_d));
        let blackout = mean(&fvec(&|r| r.blackout_d as f64));
        let ob = mean(&fvec(&|r| r.outage_b as f64));
        let od = mean(&fvec(&|r| r.outage_d as f64));
        let qb = mean(&fvec(&|r| r.qoe_b));
        let qd = mean(&fvec(&|r| r.qoe_d));
        fps_pairs += rs.len();
        fps_amplified += rs.iter().filter(|r| r.miss_d > r.miss_b).count();
        for r in rs.iter().filter(|r| r.miss_d > r.miss_b + AMPLIFICATION_GATE_PP) {
            gate_failures.push(format!(
                "[fps] {label}: tick miss {:.2}% vs primary-only {:.2}% (gate {AMPLIFICATION_GATE_PP}pp)",
                r.miss_d, r.miss_b
            ));
        }
        fps_t.row(&[
            label.to_string(),
            format!("{mb:.2}"),
            format!("{md:.2}"),
            format!("{imd:.2}"),
            format!("{blackout:.1}"),
            format!("{ob:.1} / {od:.1}"),
            format!("{qb:.1}"),
            format!("{qd:.1}"),
        ]);
        fps_artifact.push(serde_json::json!({
            "scenario": label,
            "tick_miss_base_pct": mb,
            "tick_miss_diversifi_pct": md,
            "input_miss_diversifi_pct": imd,
            "mean_input_blackout_ticks": blackout,
            "worst_outage_base_ticks": ob,
            "worst_outage_diversifi_ticks": od,
            "qoe_base": qb,
            "qoe_diversifi": qd,
            "per_seed_tick_miss_pct": rs.iter().map(|r| (r.miss_b, r.miss_d)).collect::<Vec<_>>(),
        }));
    }
    println!(
        "[fps] Fault impact ({n} seeds/scenario, {secs} s sessions, {} ms ticks, paired realisations):",
        fps_knobs.tick.as_millis()
    );
    println!("{}", fps_t.render());
    println!(
        "[fps] DiversiFi tick miss <= primary-only on {}/{fps_pairs} scenario-seed pairs",
        fps_pairs - fps_amplified
    );
    save(
        ctx,
        "resilience",
        &serde_json::json!({
            "voip": artifact,
            "fps": fps_artifact,
            "amplification_gate_pp": AMPLIFICATION_GATE_PP,
            "gate_failures": gate_failures,
        }),
    );
    if gate_failures.is_empty() {
        0
    } else {
        eprintln!(
            "[resilience] FAIL: {} no-amplification row(s) beyond the {AMPLIFICATION_GATE_PP}pp gate:",
            gate_failures.len()
        );
        for f in &gate_failures {
            eprintln!("[resilience]   {f}");
        }
        1
    }
}
