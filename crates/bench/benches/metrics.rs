//! Metrics-pipeline benchmarks: the allocating collect-then-reduce paths
//! against their zero-alloc scratch counterparts, over realistic traces
//! from a simulated corpus. `alloc` vs `scratch` pairs are the
//! before/after for the metrics rewrite (`BENCH_metrics.json`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use diversifi::{run_two_nic, TwoNicScenario};
use diversifi_simcore::{MetricsScratch, SeedFactory, SimDuration};
use diversifi_voip::{metrics, StreamSpec, StreamTrace};
use diversifi_wifi::{Channel, GeParams, LinkConfig};

const DEADLINE: SimDuration = SimDuration::from_millis(150);

/// A small corpus of 60 s traces over a weak link — long bursty traces
/// are the worst case for the collect-then-sort paths.
fn corpus(n: usize) -> Vec<StreamTrace> {
    let a = LinkConfig::office(Channel::CH1, 16.0);
    let mut b = LinkConfig::office(Channel::CH11, 26.0);
    b.ge = GeParams::weak_link();
    let mut spec = StreamSpec::voip();
    spec.duration = SimDuration::from_secs(60);
    let scn = TwoNicScenario::new(spec, a, b);
    (0..n)
        .map(|k| run_two_nic(&scn, &SeedFactory::new(0xBE7C + k as u64)).b.trace)
        .collect()
}

fn bench_worst_window(c: &mut Criterion) {
    let traces = corpus(32);
    let window = SimDuration::from_millis(500);
    let mut g = c.benchmark_group("metrics/worst_window_p90");
    g.bench_function("alloc_ecdf", |bch| {
        bch.iter(|| black_box(metrics::worst_window_ecdf(&traces, window, DEADLINE).quantile(0.9)))
    });
    g.bench_function("scratch", |bch| {
        let mut scratch = MetricsScratch::new();
        bch.iter(|| {
            black_box(metrics::worst_window_quantile_with(
                &traces,
                window,
                DEADLINE,
                0.9,
                &mut scratch,
            ))
        })
    });
    g.finish();
}

fn bench_correlation(c: &mut Criterion) {
    let traces = corpus(2);
    let mut g = c.benchmark_group("metrics/correlation_60s");
    g.bench_function("auto/alloc", |bch| {
        bch.iter(|| black_box(metrics::loss_autocorrelation(&traces[0], DEADLINE, 50)))
    });
    g.bench_function("auto/scratch", |bch| {
        let mut scratch = MetricsScratch::new();
        bch.iter(|| {
            black_box(metrics::loss_autocorrelation_with(&traces[0], DEADLINE, 50, &mut scratch))
        })
    });
    g.bench_function("cross/alloc", |bch| {
        bch.iter(|| {
            black_box(metrics::loss_cross_correlation(&traces[0], &traces[1], DEADLINE, 50))
        })
    });
    g.bench_function("cross/scratch", |bch| {
        let mut scratch = MetricsScratch::new();
        bch.iter(|| {
            black_box(metrics::loss_cross_correlation_with(
                &traces[0],
                &traces[1],
                DEADLINE,
                50,
                &mut scratch,
            ))
        })
    });
    g.finish();
}

fn bench_trace_reductions(c: &mut Criterion) {
    let traces = corpus(1);
    let trace = &traces[0];
    let mut g = c.benchmark_group("metrics/trace_60s");
    g.bench_function("loss_indicator/alloc", |bch| {
        bch.iter(|| black_box(trace.loss_indicator(DEADLINE)))
    });
    g.bench_function("loss_indicator/into", |bch| {
        let mut out = Vec::new();
        bch.iter(|| {
            trace.loss_indicator_into(DEADLINE, &mut out);
            black_box(out.len())
        })
    });
    g.bench_function("worst_window_single_pass", |bch| {
        bch.iter(|| black_box(trace.worst_window_loss_pct(SimDuration::from_millis(500), DEADLINE)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_worst_window, bench_correlation, bench_trace_reductions
}
criterion_main!(benches);
