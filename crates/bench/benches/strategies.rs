//! Strategy-combinator benchmarks: evaluating the §4 strategies over
//! full-length (6000-packet) call traces — the inner loop of Figs. 2, 5, 6.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use diversifi_client::{better, cross_link, divert, stronger, DivertConfig, LinkObservation};
use diversifi_simcore::{RngStream, SimDuration, SimTime};
use diversifi_voip::{StreamSpec, StreamTrace, DEFAULT_DEADLINE};

fn synthetic_obs(seed: u64, loss: f64, rssi: f64) -> LinkObservation {
    let spec = StreamSpec::voip();
    let mut trace = StreamTrace::new(spec, SimTime::ZERO);
    let mut rng = RngStream::from_seed(seed);
    for i in 0..trace.len() {
        if !rng.chance(loss) {
            let sent = trace.fates[i].sent;
            trace.record_arrival(i as u64, sent + SimDuration::from_millis(8));
        }
    }
    LinkObservation { trace, rssi_dbm: rssi }
}

fn bench_strategies(c: &mut Criterion) {
    let a = synthetic_obs(1, 0.03, -55.0);
    let b = synthetic_obs(2, 0.08, -62.0);
    let mut g = c.benchmark_group("strategy_6000pkt_call");
    g.bench_function("stronger", |bch| bch.iter(|| black_box(stronger(&a, &b))));
    g.bench_function("better", |bch| {
        bch.iter(|| black_box(better(&a, &b, SimDuration::from_secs(5), DEFAULT_DEADLINE)))
    });
    g.bench_function("divert", |bch| {
        bch.iter(|| black_box(divert(&a, &b, &DivertConfig::default(), DEFAULT_DEADLINE)))
    });
    g.bench_function("cross_link", |bch| bch.iter(|| black_box(cross_link(&a, &b))));
    g.finish();
}

fn bench_trace_metrics(c: &mut Criterion) {
    let a = synthetic_obs(3, 0.05, -55.0);
    let mut g = c.benchmark_group("trace_metrics_6000pkt");
    g.bench_function("worst_window", |bch| {
        bch.iter(|| {
            black_box(
                a.trace.worst_window_loss_pct(SimDuration::from_secs(5), DEFAULT_DEADLINE),
            )
        })
    });
    g.bench_function("burst_lengths", |bch| {
        bch.iter(|| black_box(a.trace.burst_lengths(DEFAULT_DEADLINE)))
    });
    g.bench_function("loss_indicator", |bch| {
        bch.iter(|| black_box(a.trace.loss_indicator(DEFAULT_DEADLINE)))
    });
    g.bench_function("rfc3550_jitter", |bch| bch.iter(|| black_box(a.trace.rfc3550_jitter_ms())));
    g.finish();
}

fn bench_correlation(c: &mut Criterion) {
    let a = synthetic_obs(4, 0.05, -55.0);
    let b = synthetic_obs(5, 0.05, -60.0);
    c.bench_function("fig4/auto_plus_cross_20lags", |bch| {
        bch.iter(|| {
            let auto =
                diversifi_voip::metrics::loss_autocorrelation(&a.trace, DEFAULT_DEADLINE, 20);
            let cross = diversifi_voip::metrics::loss_cross_correlation(
                &a.trace,
                &b.trace,
                DEFAULT_DEADLINE,
                20,
            );
            black_box((auto, cross))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_strategies, bench_trace_metrics, bench_correlation
}
criterion_main!(benches);
