//! Sweep-engine benchmarks: the §4 two-NIC corpus executed serially vs on
//! the parallel `SweepRunner`.
//!
//! The determinism contract says thread count must not change the output;
//! this bench measures what it *does* change — wall-clock time. On a
//! multi-core box the parallel run should approach `min(cores, 16)`×; on a
//! single core the two configurations should be within noise of each other
//! (the runner degrades to an inline loop at one worker).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use diversifi::analysis::{self, AnalysisOptions};
use diversifi_simcore::{par, SimDuration};

/// The benchmark corpus: 64 calls, shortened streams so one serial pass
/// stays in the seconds range at debug scale.
fn bench_opts(threads: usize) -> AnalysisOptions {
    let mut opts = AnalysisOptions::paper_corpus();
    opts.n_calls = 64;
    opts.spec.duration = SimDuration::from_secs(5);
    opts.temporal = false;
    opts.threads = threads;
    opts
}

fn bench_corpus(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_corpus_64");
    g.sample_size(10);
    for (label, threads) in [("serial", 1usize), ("parallel", par::default_parallelism())] {
        let opts = bench_opts(threads);
        g.bench_with_input(BenchmarkId::new(label, threads), &opts, |b, opts| {
            b.iter(|| black_box(analysis::run_corpus(opts, 0xBE7C)))
        });
    }
    g.finish();
}

fn bench_runner_overhead(c: &mut Criterion) {
    // The fixed cost of spinning up the scoped worker pool for a sweep
    // whose tasks are trivial — the floor below which parallelising a
    // sweep cannot pay off.
    let mut g = c.benchmark_group("sweep_runner_overhead");
    for threads in [1usize, par::default_parallelism()] {
        let runner = diversifi_simcore::SweepRunner::new(threads);
        g.bench_with_input(
            BenchmarkId::new("run_indexed_64_trivial", threads),
            &runner,
            |b, runner| b.iter(|| black_box(runner.run_indexed(64, |i| i * i))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_corpus, bench_runner_overhead);
criterion_main!(benches);
