//! Telemetry-overhead benchmarks (`BENCH_telemetry.json`).
//!
//! The contract under test is "zero overhead when off, bounded overhead
//! when on":
//!
//! - `emit/idle` — the cost of a trace-emission site with no active
//!   session. In a release build without the `trace` feature this must
//!   compile to nothing; with the feature it is one thread-local load.
//! - `emit/active` — the per-event cost with a live session (ring push).
//! - `world/short` vs `world/short_traced` — an end-to-end §6 world run
//!   with telemetry off vs on; the delta is the full-system overhead.
//! - `merge_sort` / `export_chrome` — post-run costs, off the hot path.
//! - `histogram/record` — the metrics-registry hot path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use diversifi::world::{RunMode, World, WorldConfig};
use diversifi_simcore::telemetry::{self, TRACE_COMPILED};
use diversifi_simcore::{
    export, trace_event, ComponentId, LogHistogram, SeedFactory, SimDuration, SimTime,
    SweepRunner, TraceDetail, TraceKind,
};
use diversifi_wifi::{Channel, GeParams, LinkConfig};

fn world_cfg() -> WorldConfig {
    let mut primary = LinkConfig::office(Channel::CH1, 26.0);
    primary.ge = GeParams::weak_link();
    let mut secondary = LinkConfig::office(Channel::CH11, 30.0);
    secondary.ge = GeParams::weak_link();
    let mut cfg = WorldConfig::testbed(primary, secondary);
    cfg.mode = RunMode::DiversifiCustomAp;
    cfg.spec.duration = SimDuration::from_secs(5);
    cfg
}

fn bench_emit(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry/emit");
    g.bench_function("idle", |bch| {
        // No session: the emission site must cost (at most) one
        // thread-local read, and nothing at all when compiled out.
        bch.iter(|| {
            for seq in 0u64..64 {
                trace_event!(
                    SimTime::from_millis(seq),
                    TraceKind::Delivery,
                    ComponentId::client(),
                    TraceDetail::Seq(black_box(seq)),
                );
            }
        })
    });
    if TRACE_COMPILED {
        g.bench_function("active", |bch| {
            telemetry::begin(1 << 12);
            bch.iter(|| {
                for seq in 0u64..64 {
                    trace_event!(
                        SimTime::from_millis(seq),
                        TraceKind::Delivery,
                        ComponentId::client(),
                        TraceDetail::Seq(black_box(seq)),
                    );
                }
            });
            let _ = telemetry::end();
        });
    }
    g.finish();
}

fn bench_world(c: &mut Criterion) {
    let cfg = world_cfg();
    let seeds = SeedFactory::new(0x7E1E);
    let mut g = c.benchmark_group("telemetry/world");
    g.sample_size(10);
    g.bench_function("short", |bch| {
        bch.iter(|| black_box(World::new(&cfg, &seeds).run().primary_deliveries))
    });
    if TRACE_COMPILED {
        g.bench_function("short_traced", |bch| {
            bch.iter(|| {
                let (report, session) = World::new(&cfg, &seeds).run_traced(1 << 16);
                black_box((report.primary_deliveries, session.events.len()))
            })
        });
    }
    g.finish();
}

fn bench_merge_and_export(c: &mut Criterion) {
    if !TRACE_COMPILED {
        return;
    }
    let cfg = world_cfg();
    let seeds = SeedFactory::new(0x7E1E);
    let mut g = c.benchmark_group("telemetry/post");
    g.sample_size(10);
    g.bench_function("merge_sort", |bch| {
        bch.iter(|| {
            let (_, merged) = SweepRunner::available().run_indexed_traced(4, 1 << 14, |i| {
                World::new(&cfg, &seeds.subfactory("bench", i as u64)).run().primary_deliveries
            });
            black_box(merged.events.len())
        })
    });
    let (_, merged) = SweepRunner::available().run_indexed_traced(4, 1 << 14, |i| {
        World::new(&cfg, &seeds.subfactory("bench", i as u64)).run().primary_deliveries
    });
    g.bench_function("export_chrome", |bch| {
        bch.iter(|| black_box(export::chrome_trace(&merged).len()))
    });
    g.bench_function("export_jsonl", |bch| {
        bch.iter(|| black_box(export::jsonl(&merged).len()))
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry/histogram");
    g.bench_function("record", |bch| {
        let mut h = LogHistogram::new();
        let mut v = 0x9E3779B97F4A7C15u64;
        bch.iter(|| {
            for _ in 0..64 {
                v ^= v << 13;
                v ^= v >> 7;
                v ^= v << 17;
                h.record(black_box(v >> 32));
            }
            black_box(h.count())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_emit, bench_world, bench_merge_and_export, bench_histogram
}
criterion_main!(benches);
