//! Wired-element benchmarks: SDN switch lookup, middlebox ingest and the
//! start/stop protocol under load (the hot paths behind Table 3 and §6.4),
//! plus the TCP state machine.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use diversifi_net::{
    FlowMatch, Middlebox, MiddleboxConfig, Port, Rule, SdnSwitch, StreamPacket, TcpConfig,
    TcpReceiver, TcpSender,
};
use diversifi_simcore::SimTime;
use diversifi_wifi::FlowId;

fn bench_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("sdn_switch");
    for n_rules in [2usize, 64, 512] {
        g.bench_with_input(BenchmarkId::new("process", n_rules), &n_rules, |b, &n| {
            let mut sw = SdnSwitch::new();
            for i in 0..n as u32 {
                sw.install(Rule {
                    priority: 10,
                    matcher: FlowMatch::flow(FlowId(i)),
                    out_ports: vec![Port(1), Port(2)],
                });
            }
            sw.install(Rule { priority: 0, matcher: FlowMatch::any(), out_ports: vec![Port(1)] });
            // Worst case: match the last-installed specific rule.
            let pkt = StreamPacket::new(FlowId(0), 0, 160, SimTime::ZERO);
            b.iter(|| black_box(sw.process(&pkt)))
        });
    }
    g.finish();
}

fn bench_middlebox(c: &mut Criterion) {
    let mut g = c.benchmark_group("middlebox");
    for flows in [1usize, 100, 1000] {
        g.bench_with_input(BenchmarkId::new("ingest", flows), &flows, |b, &n| {
            let mut m = Middlebox::new(MiddleboxConfig::default());
            for i in 0..n as u32 {
                m.register(FlowId(i), None);
            }
            let mut seq = 0u64;
            b.iter(|| {
                seq += 1;
                black_box(m.ingest(StreamPacket::new(FlowId(0), seq, 160, SimTime::ZERO)))
            })
        });
        g.bench_with_input(BenchmarkId::new("start_stop", flows), &flows, |b, &n| {
            let mut m = Middlebox::new(MiddleboxConfig::default());
            for i in 0..n as u32 {
                m.register(FlowId(i), None);
            }
            for s in 0..5 {
                m.ingest(StreamPacket::new(FlowId(0), s, 160, SimTime::ZERO));
            }
            b.iter(|| {
                let (d, pkts) = m.start(FlowId(0), 0);
                m.stop(FlowId(0));
                for p in &pkts {
                    m.ingest(*p);
                }
                black_box(d)
            })
        });
    }
    g.finish();
}

fn bench_tcp(c: &mut Criterion) {
    c.bench_function("tcp/send_ack_round_1k_segments", |b| {
        b.iter(|| {
            let mut snd = TcpSender::new(TcpConfig::default());
            let mut rcv = TcpReceiver::new();
            let mut t = SimTime::from_millis(1);
            let mut segs: Vec<u64> = Vec::with_capacity(512);
            while rcv.delivered < 1000 {
                // Drain one window's worth, then ACK it — acking inside
                // the send loop would refill the window forever.
                segs.clear();
                while let Some(seg) = snd.poll_send(t) {
                    segs.push(seg.seq);
                }
                t += diversifi_simcore::SimDuration::from_millis(5);
                let mut ack = 0;
                for &seq in &segs {
                    ack = rcv.on_segment(seq);
                }
                snd.on_ack(ack, t);
                t += diversifi_simcore::SimDuration::from_millis(5);
            }
            black_box(rcv.delivered)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_switch, bench_middlebox, bench_tcp
}
criterion_main!(benches);
