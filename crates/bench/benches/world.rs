//! Whole-experiment benchmarks: one simulated call per iteration, for each
//! experiment family. These time exactly what the `repro` binary runs at
//! scale (Figs. 2 and 8–10), so corpus wall-clock is predictable.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use diversifi::world::{RunMode, World, WorldConfig};
use diversifi::{run_two_nic, TwoNicScenario};
use diversifi_simcore::{SeedFactory, SimDuration};
use diversifi_voip::StreamSpec;
use diversifi_wifi::{Channel, GeParams, LinkConfig};

fn links() -> (LinkConfig, LinkConfig) {
    let a = LinkConfig::office(Channel::CH1, 16.0);
    let mut b = LinkConfig::office(Channel::CH11, 26.0);
    b.ge = GeParams::weak_link();
    (a, b)
}

fn bench_two_nic_call(c: &mut Criterion) {
    let (a, b) = links();
    let mut spec = StreamSpec::voip();
    spec.duration = SimDuration::from_secs(10);
    let scn = TwoNicScenario::new(spec, a, b);
    let mut k = 0u64;
    c.bench_function("experiment/two_nic_10s_call", |bch| {
        bch.iter(|| {
            k += 1;
            black_box(run_two_nic(&scn, &SeedFactory::new(k)))
        })
    });
}

fn bench_world_modes(c: &mut Criterion) {
    let (a, b) = links();
    let mut g = c.benchmark_group("experiment/world_10s_call");
    for (label, mode, tcp) in [
        ("primary_only", RunMode::PrimaryOnly, false),
        ("diversifi_custom_ap", RunMode::DiversifiCustomAp, false),
        ("diversifi_middlebox", RunMode::DiversifiMiddlebox, false),
        ("diversifi_with_tcp", RunMode::DiversifiCustomAp, true),
    ] {
        g.bench_function(label, |bch| {
            let mut k = 0u64;
            bch.iter(|| {
                k += 1;
                let mut cfg = WorldConfig::testbed(a.clone(), b.clone());
                cfg.mode = mode;
                cfg.with_tcp = tcp;
                cfg.spec.duration = SimDuration::from_secs(10);
                black_box(World::new(&cfg, &SeedFactory::new(k)).run())
            })
        });
    }
    g.finish();
}

fn bench_high_rate(c: &mut Criterion) {
    let (a, b) = links();
    c.bench_function("experiment/high_rate_2s_call", |bch| {
        let mut k = 0u64;
        bch.iter(|| {
            k += 1;
            let mut cfg = WorldConfig::testbed(a.clone(), b.clone());
            cfg.spec = StreamSpec {
                packet_bytes: 1000,
                interval: SimDuration::from_micros(1600),
                duration: SimDuration::from_secs(2),
            };
            black_box(World::new(&cfg, &SeedFactory::new(k)).run())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_two_nic_call, bench_world_modes, bench_high_rate
}
criterion_main!(benches);
