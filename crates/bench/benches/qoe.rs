//! QoE-pipeline benchmarks: playout concealment, the E-model, and the PCR
//! classifier — executed once per call per strategy in every experiment.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use diversifi::analysis::QualityParams;
use diversifi_simcore::{RngStream, SimDuration, SimTime};
use diversifi_voip::{
    burst_ratio, conceal, evaluate, CodecModel, PlayoutConfig, StreamSpec, StreamTrace,
    DEFAULT_DEADLINE,
};

fn synthetic_trace(seed: u64, loss: f64) -> StreamTrace {
    let spec = StreamSpec::voip();
    let mut trace = StreamTrace::new(spec, SimTime::ZERO);
    let mut rng = RngStream::from_seed(seed);
    for i in 0..trace.len() {
        if !rng.chance(loss) {
            let sent = trace.fates[i].sent;
            trace.record_arrival(
                i as u64,
                sent + SimDuration::from_micros(5000 + rng.range_u64(0, 8000)),
            );
        }
    }
    trace
}

fn bench_conceal(c: &mut Criterion) {
    let tr = synthetic_trace(1, 0.05);
    let cfg = PlayoutConfig::default();
    c.bench_function("qoe/conceal_6000pkt", |b| b.iter(|| black_box(conceal(&tr, &cfg))));
}

fn bench_emodel(c: &mut Criterion) {
    let tr = synthetic_trace(2, 0.05);
    let cfg = PlayoutConfig::default();
    let codec = CodecModel::g711_plc();
    let stats = conceal(&tr, &cfg);
    c.bench_function("qoe/emodel_evaluate", |b| {
        b.iter(|| {
            black_box(evaluate(
                &tr,
                &stats,
                &codec,
                DEFAULT_DEADLINE,
                SimDuration::from_millis(60),
            ))
        })
    });
    c.bench_function("qoe/burst_ratio", |b| {
        let bursts = tr.burst_lengths(DEFAULT_DEADLINE);
        b.iter(|| black_box(burst_ratio(&bursts, 0.05)))
    });
}

fn bench_full_pcr(c: &mut Criterion) {
    let traces: Vec<StreamTrace> = (0..20).map(|i| synthetic_trace(i, 0.03)).collect();
    let q = QualityParams::default();
    c.bench_function("qoe/pcr_over_20_calls", |b| b.iter(|| black_box(q.pcr_pct(&traces))));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_conceal, bench_emodel, bench_full_pcr
}
criterion_main!(benches);
