//! Hot-path benchmarks (`BENCH_hotpath.json`): the batched-SoA channel
//! stepping + arena-backed worlds + calendar event queue + k-way trace
//! merge fast path, measured as one workload.
//!
//! - `hotpath/three_arm_10s/*` — the `channel/three_arm_10s` paired
//!   workload on the sweep steady state: a **persistent** warm
//!   realization cache and per-worker arena across iterations (the
//!   per-iteration cold cache of the `channel` bench measures first-call
//!   cost, not the corpus regime). `warm_arena` is the full fast path;
//!   `warm_no_arena` isolates what the arena recycling buys.
//! - `hotpath/materialize_batch_60s` — the SoA batch kernel vs N
//!   scattered per-link walks for a 4-link world.
//! - `hotpath/queue_churn` — calendar vs heap backend on the dense-timer
//!   schedule shape (20 ms periodic + jittered sub-ms completions).
//! - `hotpath/traced_sweep_4x` — `run_indexed_traced` end to end (4
//!   traced runs + loser-tree k-way merge), the `telemetry/post/
//!   merge_sort` workload; only built with `--features trace`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use diversifi::world::{RunMode, World, WorldConfig};
use diversifi_simcore::{
    EventQueue, QueueBackend, SeedFactory, SimDuration, SimTime, WorkerArena,
};
use diversifi_voip::StreamSpec;
use diversifi_wifi::{Channel, ChannelRealization, GeParams, LinkConfig, RealizationCache};

fn links() -> (LinkConfig, LinkConfig) {
    let a = LinkConfig::office(Channel::CH1, 16.0);
    let mut b = LinkConfig::office(Channel::CH11, 26.0);
    b.ge = GeParams::weak_link();
    (a, b)
}

fn three_arm_cfg(a: &LinkConfig, b: &LinkConfig, mode: RunMode) -> WorldConfig {
    let mut cfg = WorldConfig::testbed(a.clone(), b.clone());
    cfg.mode = mode;
    cfg.spec = StreamSpec::voip();
    cfg.spec.duration = SimDuration::from_secs(10);
    cfg
}

/// The steady-state sweep regime: same links across calls, so every arm
/// after the very first iteration is a pure cache hit, and the arena
/// recycles the queue + bookkeeping capacity run over run.
fn bench_three_arm(c: &mut Criterion) {
    let (a, b) = links();
    let modes = [RunMode::PrimaryOnly, RunMode::DiversifiCustomAp, RunMode::DiversifiMiddlebox];
    let mut g = c.benchmark_group("hotpath/three_arm_10s");
    g.bench_function("warm_arena", |bch| {
        let cache = RealizationCache::new(4);
        let mut arena = WorkerArena::new();
        let seeds = SeedFactory::new(7);
        bch.iter(|| {
            for mode in modes {
                let cfg = three_arm_cfg(&a, &b, mode);
                black_box(
                    World::new_cached_in(&cfg, &seeds, &cache, &mut arena).run_in(&mut arena),
                );
            }
        })
    });
    g.bench_function("warm_no_arena", |bch| {
        let cache = RealizationCache::new(4);
        let seeds = SeedFactory::new(7);
        bch.iter(|| {
            for mode in modes {
                let cfg = three_arm_cfg(&a, &b, mode);
                black_box(World::new_cached(&cfg, &seeds, &cache).run());
            }
        })
    });
    g.finish();
}

/// The SoA batch kernel: all GE chains and OU tracks of a 4-link world
/// advanced in one loop over the 2 ms grid, vs 4 scattered walks.
fn bench_materialize_batch(c: &mut Criterion) {
    let (a, b) = links();
    let c2 = LinkConfig::office(Channel::CH6, 21.0);
    let mut d = LinkConfig::office(Channel::CH11, 29.0);
    d.ge = GeParams::weak_link();
    let all = [a, b, c2, d];
    let horizon = SimTime::ZERO + SimDuration::from_secs(60);
    let mut g = c.benchmark_group("hotpath/materialize_batch_60s");
    g.bench_function("batched_x4", |bch| {
        let mut k = 0u64;
        bch.iter(|| {
            k += 1;
            let seeds = SeedFactory::new(k);
            let batch: Vec<(&LinkConfig, u64)> =
                all.iter().enumerate().map(|(i, l)| (l, i as u64)).collect();
            black_box(ChannelRealization::materialize_batch(&batch, &seeds, horizon))
        })
    });
    g.bench_function("scattered_x4", |bch| {
        let mut k = 0u64;
        bch.iter(|| {
            k += 1;
            let seeds = SeedFactory::new(k);
            let reals: Vec<ChannelRealization> = all
                .iter()
                .enumerate()
                .map(|(i, l)| ChannelRealization::materialize(l, &seeds, i as u64, horizon))
                .collect();
            black_box(reals)
        })
    });
    g.finish();
}

/// Queue backends head to head on the world's timer shape: a 20 ms
/// periodic tick plus a burst of jittered sub-millisecond completions per
/// tick, with a sprinkle of cancels (lazy-cancelled timers).
fn bench_queue_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath/queue_churn");
    for (label, backend) in [("heap", QueueBackend::Heap), ("calendar", QueueBackend::Calendar)] {
        g.bench_function(label, |bch| {
            bch.iter(|| {
                let mut q: EventQueue<u32> = EventQueue::with_backend(backend);
                let mut rng = SeedFactory::new(11).stream("churn", 0);
                q.schedule(SimTime::ZERO, 0);
                let mut pops = 0u64;
                while let Some((now, tag)) = q.pop() {
                    pops += 1;
                    if tag == 0 && pops < 4000 {
                        // Periodic tick: re-arm and fan out completions.
                        q.schedule(now + SimDuration::from_millis(20), 0);
                        let mut cancel = None;
                        for i in 1..=6u32 {
                            let d = SimDuration::from_micros(rng.range_u64(40, 900));
                            let id = q.schedule(now + d, i);
                            if i == 3 {
                                cancel = Some(id);
                            }
                        }
                        if let Some(id) = cancel {
                            q.cancel(id);
                        }
                    }
                }
                black_box(pops)
            })
        });
    }
    g.finish();
}

/// End-to-end traced sweep: 4 runs absorbed in run order, loser-tree
/// merged, finished. Same workload as `telemetry/post/merge_sort` — the
/// before/after for the k-way merge (plus the faster worlds beneath it).
#[cfg(feature = "trace")]
fn bench_traced_sweep(c: &mut Criterion) {
    use diversifi_simcore::SweepRunner;
    // Same scenario as `telemetry/post/merge_sort` (weak/weak pair, 5 s)
    // so the two numbers are directly comparable.
    let mut primary = LinkConfig::office(Channel::CH1, 26.0);
    primary.ge = GeParams::weak_link();
    let mut secondary = LinkConfig::office(Channel::CH11, 30.0);
    secondary.ge = GeParams::weak_link();
    let mut cfg = WorldConfig::testbed(primary, secondary);
    cfg.mode = RunMode::DiversifiCustomAp;
    cfg.spec.duration = SimDuration::from_secs(5);
    let seeds = SeedFactory::new(0x7E1E);
    let mut g = c.benchmark_group("hotpath/traced_sweep_4x");
    g.sample_size(10);
    g.bench_function("run_and_merge", |bch| {
        bch.iter(|| {
            let (_, merged) = SweepRunner::available().run_indexed_traced(4, 1 << 14, |i| {
                World::new(&cfg, &seeds.subfactory("bench", i as u64)).run().primary_deliveries
            });
            black_box(merged.events.len())
        })
    });
    g.finish();
}

#[cfg(not(feature = "trace"))]
fn bench_traced_sweep(_c: &mut Criterion) {}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_three_arm, bench_materialize_batch, bench_queue_churn, bench_traced_sweep
}
criterion_main!(benches);
