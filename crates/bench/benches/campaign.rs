//! Campaign-engine overhead benchmarks (`BENCH_campaign.json`).
//!
//! The contract under test is "the engine is free": running a fleet
//! campaign through `run_campaign` (shard planning, per-shard digests,
//! ordered merge, progress callbacks — checkpointing off) must cost
//! within a few percent of the raw loop a caller would hand-write over
//! `SweepRunner`. The ISSUE acceptance bound is <5% on the parallel
//! pair; EXPERIMENTS.md records the measured numbers.
//!
//! - `campaign/fold_32k/engine` vs `raw_sweep` — 32k population-model
//!   calls folded into the fleet digest, auto threads: the engine's
//!   sharded run against a hand-rolled `run_indexed` over the same
//!   shard plan with the same ordered merge.
//! - `campaign/fold_32k/engine_1t` vs `raw_loop_1t` — the same work on
//!   one thread, the raw side a single straight fold loop with no
//!   sharding at all: the engine's total bookkeeping in isolation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use diversifi::campaign::FleetSchema;
use diversifi::population::{CallSampler, PopulationModel};
use diversifi_simcore::{run_campaign, CampaignConfig, ShardDigest, SweepRunner};

const CALLS: u64 = 32_768;
const SHARD: u64 = 4_096;

fn cfg(threads: usize) -> CampaignConfig {
    let mut cfg = CampaignConfig::new(CALLS);
    cfg.shard_size = SHARD;
    cfg.threads = threads;
    cfg
}

fn bench_fold(c: &mut Criterion) {
    let model = PopulationModel::default();
    let sampler = CallSampler::new(&model, 0xCA11);
    let fleet = FleetSchema::new();

    let mut g = c.benchmark_group("campaign/fold_32k");
    g.sample_size(10);

    g.bench_function("engine", |b| {
        b.iter(|| {
            let out = run_campaign(
                &cfg(0),
                &fleet.schema,
                |i, _scratch, digest| {
                    fleet.fold(&sampler.call(i), digest);
                },
                |_| {},
            )
            .expect("in-memory campaign cannot fail");
            black_box(out.fingerprint)
        })
    });

    g.bench_function("raw_sweep", |b| {
        b.iter(|| {
            let shards = CALLS.div_ceil(SHARD) as usize;
            let digests = SweepRunner::available().run_indexed(shards, |s| {
                let first = s as u64 * SHARD;
                let len = SHARD.min(CALLS - first);
                let mut d = ShardDigest::new(&fleet.schema, first, len);
                for i in first..first + len {
                    fleet.fold(&sampler.call(i), &mut d);
                }
                d
            });
            let mut merged = digests[0].clone();
            for d in &digests[1..] {
                merged.merge_from(d);
            }
            black_box(merged.fingerprint(&fleet.schema))
        })
    });

    g.bench_function("engine_1t", |b| {
        b.iter(|| {
            let out = run_campaign(
                &cfg(1),
                &fleet.schema,
                |i, _scratch, digest| {
                    fleet.fold(&sampler.call(i), digest);
                },
                |_| {},
            )
            .expect("in-memory campaign cannot fail");
            black_box(out.fingerprint)
        })
    });

    g.bench_function("raw_loop_1t", |b| {
        b.iter(|| {
            let mut d = ShardDigest::new(&fleet.schema, 0, CALLS);
            for i in 0..CALLS {
                fleet.fold(&sampler.call(i), &mut d);
            }
            black_box(d.fingerprint(&fleet.schema))
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_fold
}
criterion_main!(benches);
