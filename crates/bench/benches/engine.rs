//! Simulation-core benchmarks: the event queue and stochastic processes
//! that every experiment's wall-clock time hangs off.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use diversifi_simcore::{EventQueue, SeedFactory, SimDuration, SimTime};
use diversifi_wifi::{GeParams, GilbertElliott, OrnsteinUhlenbeck};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for n in [1_000usize, 10_000, 100_000] {
        g.bench_with_input(BenchmarkId::new("schedule_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q: EventQueue<u64> = EventQueue::new();
                for i in 0..n as u64 {
                    // Pseudo-random interleaving without an RNG in the loop.
                    let t = (i.wrapping_mul(0x9E3779B97F4A7C15)) % 1_000_000_000;
                    q.schedule(SimTime::from_nanos(t), i);
                }
                let mut acc = 0u64;
                while let Some((_, v)) = q.pop() {
                    acc = acc.wrapping_add(v);
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_rng_streams(c: &mut Criterion) {
    let seeds = SeedFactory::new(42);
    c.bench_function("rng/stream_derivation", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(seeds.stream("bench", i))
        })
    });
    c.bench_function("rng/uniform_draws_1k", |b| {
        let mut rng = seeds.stream("draws", 0);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += rng.uniform();
            }
            black_box(acc)
        })
    });
}

fn bench_channel_processes(c: &mut Criterion) {
    let seeds = SeedFactory::new(7);
    c.bench_function("fading/ge_query_20ms_steps_1k", |b| {
        b.iter_batched(
            || GilbertElliott::new(GeParams::weak_link(), seeds.stream("ge", 0)),
            |mut ge| {
                let mut t = SimTime::ZERO;
                let mut bad = 0u32;
                for _ in 0..1000 {
                    if ge.erasure_at(t) > 0.5 {
                        bad += 1;
                    }
                    t += SimDuration::from_millis(20);
                }
                black_box(bad)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("fading/ou_query_1k", |b| {
        b.iter_batched(
            || OrnsteinUhlenbeck::new(3.0, SimDuration::from_secs(2), seeds.stream("ou", 0)),
            |mut ou| {
                let mut t = SimTime::ZERO;
                let mut acc = 0.0;
                for _ in 0..1000 {
                    acc += ou.at(t);
                    t += SimDuration::from_millis(20);
                }
                black_box(acc)
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_event_queue, bench_rng_streams, bench_channel_processes
}
criterion_main!(benches);
