//! WiFi substrate benchmarks: the per-frame MAC exchange is the single
//! hottest function in every corpus (6000–75000 calls per simulated call).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use diversifi_simcore::{SeedFactory, SimDuration, SimTime};
use diversifi_wifi::{
    mac, AccessPoint, AdapterId, ApConfig, ApId, Channel, ClientId, FlowId, Frame, GeParams,
    LinkConfig, LinkModel, MacConfig, QueueDiscipline,
};

fn frame(seq: u64, bytes: u32) -> Frame {
    Frame::data(FlowId(0), seq, bytes, SimTime::ZERO, ClientId(0), AdapterId(0))
}

fn bench_transmit(c: &mut Criterion) {
    let seeds = SeedFactory::new(0xBEEF);
    let mut g = c.benchmark_group("mac_transmit");
    for (label, dist, weak) in
        [("clean_voip", 12.0, false), ("weak_voip", 30.0, true), ("clean_mtu", 12.0, false)]
    {
        let bytes = if label.ends_with("mtu") { 1500 } else { 200 };
        g.bench_with_input(BenchmarkId::new(label, bytes), &bytes, |b, &bytes| {
            let mut cfg = LinkConfig::office(Channel::CH1, dist);
            if weak {
                cfg.ge = GeParams::weak_link();
            }
            let mut link = LinkModel::new(cfg, &seeds, 0);
            let mac_cfg = MacConfig::default();
            let mut t = SimTime::ZERO;
            let mut seq = 0u64;
            b.iter(|| {
                let out = mac::transmit(&mut link, &mac_cfg, &frame(seq, bytes), t);
                seq += 1;
                t = out.completed_at + SimDuration::from_millis(1);
                black_box(out.delivered)
            })
        });
    }
    g.finish();
}

fn bench_erasure_eval(c: &mut Criterion) {
    let seeds = SeedFactory::new(0xFADE);
    c.bench_function("link/attempt_erasure", |b| {
        let mut cfg = LinkConfig::office(Channel::CH11, 20.0);
        cfg.microwave = Some(diversifi_wifi::MicrowaveOven::default());
        cfg.congestion = Some(diversifi_wifi::Congestion::heavy());
        let mut link = LinkModel::new(cfg, &seeds, 0);
        let mut t = SimTime::ZERO;
        b.iter(|| {
            let rate = link.select_rate_at(t);
            let p = link.attempt_erasure(t, rate, 200);
            t += SimDuration::from_micros(300);
            black_box(p)
        })
    });
}

fn bench_ap_queueing(c: &mut Criterion) {
    c.bench_function("ap/enqueue_wake_drain_64", |b| {
        let a = AdapterId(1);
        b.iter(|| {
            let mut ap = AccessPoint::new(ApConfig::new(ApId(0), Channel::CH1));
            ap.associate(a, QueueDiscipline::HeadDrop { cap: 5 });
            ap.set_power_save(a, true);
            for s in 0..64 {
                ap.enqueue(a, frame(s, 200));
            }
            ap.set_power_save(a, false);
            let mut n = 0;
            while ap.next_tx().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_transmit, bench_erasure_eval, bench_ap_queueing
}
criterion_main!(benches);
