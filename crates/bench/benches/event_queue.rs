//! Event-queue hot-path benchmarks: steady-state churn at increasing
//! numbers of pending events, plus the cancel and peek paths.
//!
//! Every simulated world spends its inner loop in
//! `EventQueue::{schedule, pop, peek_time, cancel}`, so these measure the
//! slab + binary-heap implementation at the pending-set sizes the corpus
//! (1k–10k) and multi-client fleets (100k–1M) actually reach.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use diversifi_simcore::{EventQueue, SimDuration, SimTime};

/// Deterministic pseudo-random nanosecond offset for event `i`.
fn pseudo_nanos(i: u64) -> u64 {
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 1_000_000_000
}

/// Pre-fill a queue with `n` pending events.
fn prefill(n: u64) -> EventQueue<u64> {
    let mut q = EventQueue::new();
    for i in 0..n {
        q.schedule(SimTime::from_nanos(pseudo_nanos(i)), i);
    }
    q
}

fn bench_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue_churn");
    for n in [1_000u64, 10_000, 100_000, 1_000_000] {
        // Steady state: the queue holds ~n pending events throughout; each
        // measured batch pops 1024 events and schedules 1024 replacements,
        // which is exactly the simulator's inner-loop shape.
        let mut q = prefill(n);
        let mut next_id = n;
        g.bench_with_input(BenchmarkId::new("pop_schedule_1024", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for _ in 0..1024 {
                    let (t, v) = q.pop().expect("queue is never drained");
                    acc = acc.wrapping_add(v);
                    // Reschedule after the popped time so the pending count
                    // stays at n forever.
                    q.schedule(t + SimDuration::from_nanos(pseudo_nanos(next_id)), next_id);
                    next_id += 1;
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_cancel(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue_cancel");
    for n in [1_000u64, 100_000] {
        // Timer-rearm shape: schedule a batch, cancel it unfired (the
        // generation-stamped slab must reclaim the slots), repeat on top of
        // n live events.
        let mut q = prefill(n);
        let mut next_id = n;
        g.bench_with_input(BenchmarkId::new("schedule_cancel_1024", n), &n, |b, _| {
            b.iter(|| {
                let ids: Vec<_> = (0..1024)
                    .map(|_| {
                        next_id += 1;
                        q.schedule(SimTime::from_nanos(pseudo_nanos(next_id)), next_id)
                    })
                    .collect();
                for id in ids {
                    q.cancel(id);
                }
                black_box(q.len())
            })
        });
    }
    g.finish();
}

fn bench_peek(c: &mut Criterion) {
    // `peek_time` runs once per world step; after the overhaul it is a
    // single heap peek (cancelled entries are purged lazily by pop).
    let mut q = prefill(100_000);
    c.bench_function("event_queue_peek/100000", |b| b.iter(|| black_box(q.peek_time())));
}

criterion_group!(benches, bench_churn, bench_cancel, bench_peek);
criterion_main!(benches);
