//! Channel-realisation benchmarks: what does it cost to materialise a
//! `(link, seed)` realisation, and what do paired N-arm experiments save
//! by replaying one realisation instead of re-sampling the channel per
//! arm? `uncached` vs `cached` pairs below are the before/after for the
//! realisation cache (`BENCH_channel.json`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use diversifi::world::{RunMode, World, WorldConfig};
use diversifi_simcore::{SeedFactory, SimDuration, SimTime};
use diversifi_voip::StreamSpec;
use diversifi_wifi::{Channel, ChannelRealization, GeParams, LinkConfig, RealizationCache};

fn links() -> (LinkConfig, LinkConfig) {
    let a = LinkConfig::office(Channel::CH1, 16.0);
    let mut b = LinkConfig::office(Channel::CH11, 26.0);
    b.ge = GeParams::weak_link();
    (a, b)
}

fn bench_materialize(c: &mut Criterion) {
    let (a, _) = links();
    let horizon = SimTime::ZERO + SimDuration::from_secs(60);
    let mut g = c.benchmark_group("channel/materialize_60s");
    g.bench_function("fresh", |bch| {
        let mut k = 0u64;
        bch.iter(|| {
            k += 1;
            black_box(ChannelRealization::materialize(&a, &SeedFactory::new(k), 0, horizon))
        })
    });
    g.bench_function("cache_hit", |bch| {
        let cache = RealizationCache::new(4);
        let seeds = SeedFactory::new(7);
        cache.get_or_materialize(&a, &seeds, 0, horizon);
        bch.iter(|| black_box(cache.get_or_materialize(&a, &seeds, 0, horizon)))
    });
    g.finish();
}

/// One §6-style paired experiment: the same `(links, seed)` world run in
/// all three modes. `uncached` materialises both channels per arm;
/// `cached` materialises once and replays.
fn bench_three_arm(c: &mut Criterion) {
    let (a, b) = links();
    let modes =
        [RunMode::PrimaryOnly, RunMode::DiversifiCustomAp, RunMode::DiversifiMiddlebox];
    let cfg_for = |mode| {
        let mut cfg = WorldConfig::testbed(a.clone(), b.clone());
        cfg.mode = mode;
        cfg.spec = StreamSpec::voip();
        cfg.spec.duration = SimDuration::from_secs(10);
        cfg
    };
    let mut g = c.benchmark_group("channel/three_arm_10s");
    g.bench_function("uncached", |bch| {
        let mut k = 0u64;
        bch.iter(|| {
            k += 1;
            let seeds = SeedFactory::new(k);
            for mode in modes {
                let cfg = cfg_for(mode);
                black_box(World::new(&cfg, &seeds).run());
            }
        })
    });
    g.bench_function("cached", |bch| {
        let mut k = 0u64;
        bch.iter(|| {
            k += 1;
            let seeds = SeedFactory::new(k);
            let cache = RealizationCache::new(4);
            for mode in modes {
                let cfg = cfg_for(mode);
                black_box(World::new_cached(&cfg, &seeds, &cache).run());
            }
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_materialize, bench_three_arm
}
criterion_main!(benches);
