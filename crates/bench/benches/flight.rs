//! Flight-recorder overhead benchmarks (`BENCH_flight.json`).
//!
//! The contract under test is "the recorder is free when armed": folding
//! a 100k-call fps-office campaign with the top-K worst-call selector
//! live (scoring every call against the poor trigger, offering misses
//! into the bounded `WorstK` heap) must cost within 5% of the same
//! campaign with the recorder off. The ISSUE acceptance bound is <5%;
//! EXPERIMENTS.md records the measured numbers.
//!
//! - `campaign/flight_100k/recorder_off` — `run_campaign` folding the
//!   fps fleet digest with no selection at all.
//! - `campaign/flight_100k/recorder_on` — `run_campaign_observed` with
//!   `flight_k = 8`, scoring each call and offering those below
//!   `FPS_QOE_POOR` into the per-shard selector.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use diversifi::campaign::FleetSchema;
use diversifi::population::{CallSampler, PopulationModel};
use diversifi_simcore::{
    run_campaign, run_campaign_observed, CampaignConfig, FlightKey,
};
use diversifi_voip::{FpsConfig, WorkloadKind, FPS_QOE_POOR};

const CALLS: u64 = 100_000;
const SHARD: u64 = 8_192;
const SEED: u64 = 0xF11E57;

fn cfg(flight_k: usize) -> CampaignConfig {
    let mut cfg = CampaignConfig::new(CALLS);
    cfg.shard_size = SHARD;
    cfg.threads = 0;
    cfg.flight_k = flight_k;
    cfg
}

fn bench_flight(c: &mut Criterion) {
    let model = PopulationModel::default();
    let sampler = CallSampler::new(&model, SEED);
    let fleet = FleetSchema::for_workload(WorkloadKind::Fps(FpsConfig::office()));

    let mut g = c.benchmark_group("campaign/flight_100k");
    g.sample_size(10);

    g.bench_function("recorder_off", |b| {
        b.iter(|| {
            let out = run_campaign(
                &cfg(0),
                &fleet.schema,
                |i, _scratch, digest| {
                    fleet.fold(&sampler.call(i), digest);
                },
                |_| {},
            )
            .expect("in-memory campaign cannot fail");
            black_box(out.fingerprint)
        })
    });

    g.bench_function("recorder_on", |b| {
        b.iter(|| {
            let out = run_campaign_observed(
                &cfg(8),
                &fleet.schema,
                |i, _scratch, digest, worst| {
                    let score = fleet.fold(&sampler.call(i), digest);
                    if score < FPS_QOE_POOR {
                        worst.offer(FlightKey { score, seed: SEED, index: i });
                    }
                },
                |_| {},
                |_| {},
            )
            .expect("in-memory campaign cannot fail");
            black_box((out.fingerprint, out.flight.map(|w| w.len())))
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_flight
}
criterion_main!(benches);
