//! Lightweight event tracing.
//!
//! Components emit structured [`TraceEvent`]s into a [`TraceSink`]. The
//! default sink discards everything at zero cost; tests and the figure-3
//! style trace plots install a [`RecordingSink`]. This mirrors smoltcp's
//! approach of making observability a pluggable, zero-overhead-by-default
//! concern rather than wiring a logging framework through the data path.

use crate::time::SimTime;
use serde::Serialize;
use std::fmt;

/// Category of a trace event — coarse, stable identifiers that tests and the
/// reproduction harness can filter on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub enum TraceKind {
    /// A packet was handed to an AP / middlebox queue.
    Enqueue,
    /// A packet was dropped from a queue (head- or tail-drop).
    QueueDrop,
    /// A frame transmission started on the air.
    TxStart,
    /// A frame was delivered to the client.
    Delivery,
    /// A frame exhausted its MAC retries and was lost over the air.
    AirLoss,
    /// The client changed channel / link.
    LinkSwitch,
    /// A power-save state change (PM bit) reached an AP.
    PowerSave,
    /// Strategy-level decision (loss detected, recovery scheduled, …).
    Decision,
    /// Transport-level event (TCP retransmit, cwnd change, …).
    Transport,
}

/// One structured trace record.
#[derive(Clone, Debug, Serialize)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// What kind of event.
    pub kind: TraceKind,
    /// Which component emitted it (stable, human-readable, e.g. `"ap:1"`).
    pub who: String,
    /// Free-form detail (e.g. `"seq=142"`).
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:?} {} {}", self.at, self.kind, self.who, self.detail)
    }
}

/// Receiver of trace events.
pub trait TraceSink {
    /// Record one event. Implementations must be cheap when disabled.
    fn record(&mut self, event: TraceEvent);

    /// Fast-path check so emitters can skip formatting entirely.
    fn enabled(&self) -> bool {
        true
    }
}

/// Discards everything; `enabled()` is false so callers skip formatting.
#[derive(Default, Clone, Copy, Debug)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: TraceEvent) {}
    fn enabled(&self) -> bool {
        false
    }
}

/// Records every event in memory, optionally filtered by kind.
#[derive(Default, Debug)]
pub struct RecordingSink {
    events: Vec<TraceEvent>,
    filter: Option<Vec<TraceKind>>,
}

impl RecordingSink {
    /// Record all kinds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record only the listed kinds.
    pub fn filtered(kinds: Vec<TraceKind>) -> Self {
        RecordingSink { events: Vec::new(), filter: Some(kinds) }
    }

    /// All recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Recorded events of one kind.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Count of recorded events of one kind.
    pub fn count(&self, kind: TraceKind) -> usize {
        self.of_kind(kind).count()
    }

    /// Drain all events out of the sink.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

impl TraceSink for RecordingSink {
    fn record(&mut self, event: TraceEvent) {
        if let Some(filter) = &self.filter {
            if !filter.contains(&event.kind) {
                return;
            }
        }
        self.events.push(event);
    }
}

/// Convenience macro: emit into a sink only when it is enabled, so the
/// `format!` never runs for [`NullSink`].
#[macro_export]
macro_rules! trace_event {
    ($sink:expr, $at:expr, $kind:expr, $who:expr, $($arg:tt)*) => {
        if $crate::TraceSink::enabled($sink) {
            $crate::TraceSink::record(
                $sink,
                $crate::TraceEvent {
                    at: $at,
                    kind: $kind,
                    who: ($who).to_string(),
                    detail: format!($($arg)*),
                },
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let s = NullSink;
        assert!(!s.enabled());
    }

    #[test]
    fn recording_sink_records_in_order() {
        let mut s = RecordingSink::new();
        for i in 0..5u64 {
            s.record(TraceEvent {
                at: SimTime::from_millis(i),
                kind: TraceKind::Delivery,
                who: "client".into(),
                detail: format!("seq={i}"),
            });
        }
        assert_eq!(s.events().len(), 5);
        assert_eq!(s.events()[3].detail, "seq=3");
        assert_eq!(s.count(TraceKind::Delivery), 5);
        assert_eq!(s.count(TraceKind::AirLoss), 0);
    }

    #[test]
    fn filtered_sink_drops_other_kinds() {
        let mut s = RecordingSink::filtered(vec![TraceKind::QueueDrop]);
        s.record(TraceEvent {
            at: SimTime::ZERO,
            kind: TraceKind::Delivery,
            who: "x".into(),
            detail: String::new(),
        });
        s.record(TraceEvent {
            at: SimTime::ZERO,
            kind: TraceKind::QueueDrop,
            who: "x".into(),
            detail: String::new(),
        });
        assert_eq!(s.events().len(), 1);
        assert_eq!(s.events()[0].kind, TraceKind::QueueDrop);
    }

    #[test]
    fn trace_macro_skips_disabled_sink() {
        let mut null = NullSink;
        // Would panic if evaluated: we rely on enabled() gating.
        trace_event!(&mut null, SimTime::ZERO, TraceKind::TxStart, "ap", "{}", "ok");

        let mut rec = RecordingSink::new();
        trace_event!(&mut rec, SimTime::from_millis(1), TraceKind::TxStart, "ap:0", "seq={}", 9);
        assert_eq!(rec.events()[0].detail, "seq=9");
        assert_eq!(rec.events()[0].who, "ap:0");
    }

    #[test]
    fn take_drains() {
        let mut s = RecordingSink::new();
        s.record(TraceEvent {
            at: SimTime::ZERO,
            kind: TraceKind::Decision,
            who: "c".into(),
            detail: String::new(),
        });
        let taken = s.take();
        assert_eq!(taken.len(), 1);
        assert!(s.events().is_empty());
    }

    #[test]
    fn display_format() {
        let e = TraceEvent {
            at: SimTime::from_millis(20),
            kind: TraceKind::LinkSwitch,
            who: "client".into(),
            detail: "to=secondary".into(),
        };
        let s = e.to_string();
        assert!(s.contains("LinkSwitch"));
        assert!(s.contains("to=secondary"));
    }
}
