//! Zero-alloc structured event tracing.
//!
//! Components emit fixed-size, `Copy` [`TraceEvent`]s: the emitter is an
//! interned [`ComponentId`] (formatted lazily on export, never on the hot
//! path) and the payload is a fixed-layout [`TraceDetail`] enum — no
//! `String`s, no heap traffic per record. Sinks receive events either
//! directly through the [`TraceSink`] trait (tests, ad-hoc tooling) or via
//! the thread-local collector in [`crate::telemetry`], which is what the
//! sweep engine and `World::run` use. This mirrors smoltcp's approach of
//! making observability a pluggable, zero-overhead-by-default concern
//! rather than wiring a logging framework through the data path.

use crate::time::SimTime;
use serde::Serialize;
use std::collections::VecDeque;
use std::fmt;

/// Category of a trace event — coarse, stable identifiers that tests and the
/// reproduction harness can filter on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum TraceKind {
    /// A packet was handed to an AP / middlebox queue.
    Enqueue,
    /// A packet was dropped from a queue (head- or tail-drop).
    QueueDrop,
    /// A frame transmission started on the air.
    TxStart,
    /// A frame was delivered to the client.
    Delivery,
    /// A frame exhausted its MAC retries and was lost over the air.
    AirLoss,
    /// The client changed channel / link.
    LinkSwitch,
    /// A power-save state change (PM bit) reached an AP.
    PowerSave,
    /// Strategy-level decision (loss detected, recovery scheduled, …).
    Decision,
    /// Transport-level event (TCP segment, retransmit, cwnd change, …).
    Transport,
    /// An injected fault changed state (onset, clear, recovery).
    Fault,
}

impl TraceKind {
    /// Every kind, in declaration order — for coverage checks and filters.
    pub const ALL: [TraceKind; 10] = [
        TraceKind::Enqueue,
        TraceKind::QueueDrop,
        TraceKind::TxStart,
        TraceKind::Delivery,
        TraceKind::AirLoss,
        TraceKind::LinkSwitch,
        TraceKind::PowerSave,
        TraceKind::Decision,
        TraceKind::Transport,
        TraceKind::Fault,
    ];

    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Enqueue => "enqueue",
            TraceKind::QueueDrop => "queue_drop",
            TraceKind::TxStart => "tx_start",
            TraceKind::Delivery => "delivery",
            TraceKind::AirLoss => "air_loss",
            TraceKind::LinkSwitch => "link_switch",
            TraceKind::PowerSave => "power_save",
            TraceKind::Decision => "decision",
            TraceKind::Transport => "transport",
            TraceKind::Fault => "fault",
        }
    }
}

/// The class of component an event or metric belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum ComponentKind {
    /// The event-loop / world harness itself.
    World,
    /// The VoIP packet source (switch side).
    Source,
    /// An access point (queues, associations, power save).
    Ap,
    /// The 802.11 MAC/PHY exchange beneath an AP.
    Mac,
    /// The client device (Algorithm 1, NIC, playout).
    Client,
    /// The recovery middlebox.
    Middlebox,
    /// The background TCP sender.
    Tcp,
    /// The playout / concealment stage.
    Playout,
}

impl ComponentKind {
    fn label(self) -> &'static str {
        match self {
            ComponentKind::World => "world",
            ComponentKind::Source => "source",
            ComponentKind::Ap => "ap",
            ComponentKind::Mac => "mac",
            ComponentKind::Client => "client",
            ComponentKind::Middlebox => "middlebox",
            ComponentKind::Tcp => "tcp",
            ComponentKind::Playout => "playout",
        }
    }

    /// True when instances are distinguished by index (APs, MACs).
    fn indexed(self) -> bool {
        matches!(self, ComponentKind::Ap | ComponentKind::Mac)
    }
}

/// Interned, copyable component identity: a kind plus an instance index.
///
/// Replaces the old `who: String` — two bytes wide, `Copy`, and formatted
/// lazily (`"ap:1"`, `"client"`) only when a trace is exported or printed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct ComponentId {
    /// Which class of component.
    pub kind: ComponentKind,
    /// Instance index within the kind (0 for singletons).
    pub index: u16,
}

impl ComponentId {
    /// A component id for any kind/index pair.
    pub const fn new(kind: ComponentKind, index: u16) -> ComponentId {
        ComponentId { kind, index }
    }

    /// The world / event-loop harness.
    pub const fn world() -> ComponentId {
        ComponentId::new(ComponentKind::World, 0)
    }

    /// The VoIP source.
    pub const fn source() -> ComponentId {
        ComponentId::new(ComponentKind::Source, 0)
    }

    /// Access point `i`.
    pub const fn ap(i: u16) -> ComponentId {
        ComponentId::new(ComponentKind::Ap, i)
    }

    /// The MAC/PHY under access point `i`.
    pub const fn mac(i: u16) -> ComponentId {
        ComponentId::new(ComponentKind::Mac, i)
    }

    /// The client device.
    pub const fn client() -> ComponentId {
        ComponentId::new(ComponentKind::Client, 0)
    }

    /// The recovery middlebox.
    pub const fn middlebox() -> ComponentId {
        ComponentId::new(ComponentKind::Middlebox, 0)
    }

    /// The background TCP sender.
    pub const fn tcp() -> ComponentId {
        ComponentId::new(ComponentKind::Tcp, 0)
    }

    /// The playout / concealment stage.
    pub const fn playout() -> ComponentId {
        ComponentId::new(ComponentKind::Playout, 0)
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.kind.indexed() {
            write!(f, "{}:{}", self.kind.label(), self.index)
        } else {
            f.write_str(self.kind.label())
        }
    }
}

/// Which Algorithm-1 / control-plane decision a [`TraceDetail::Decision`]
/// records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub enum DecisionKind {
    /// Client decided to hop to the secondary AP.
    SwitchToSecondary,
    /// Client decided to return to the primary AP.
    SwitchToPrimary,
    /// Client asked the middlebox to start replicating.
    MiddleboxStart,
    /// Client asked the middlebox to stop replicating.
    MiddleboxStop,
}

impl DecisionKind {
    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            DecisionKind::SwitchToSecondary => "switch_to_secondary",
            DecisionKind::SwitchToPrimary => "switch_to_primary",
            DecisionKind::MiddleboxStart => "middlebox_start",
            DecisionKind::MiddleboxStop => "middlebox_stop",
        }
    }
}

/// Fixed-payload event detail — replaces the old free-form `String`.
///
/// Every variant is `Copy` with a fixed layout, so recording an event is a
/// plain store into a ring buffer; formatting happens only on export.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceDetail {
    /// No payload.
    None,
    /// A bare sequence number.
    Seq(u64),
    /// A queue admission: packet `seq`, queue depth after the operation,
    /// and the queue's capacity.
    Queue {
        /// Sequence number of the admitted packet.
        seq: u64,
        /// Queue depth after the operation.
        depth: u16,
        /// Configured queue capacity.
        cap: u16,
    },
    /// A queue drop: the victim's sequence number and whether it was a
    /// head-drop (victim ≠ the packet being offered).
    Drop {
        /// Sequence number of the dropped packet.
        seq: u64,
        /// True for head-drop (oldest evicted), false for tail-drop.
        head: bool,
    },
    /// An air exchange: sequence, MAC attempts used, and the exchange
    /// duration in microseconds.
    Air {
        /// Sequence number of the frame.
        seq: u64,
        /// MAC attempts consumed (1 = first try).
        attempts: u8,
        /// Duration of the exchange, microseconds.
        dur_us: u32,
    },
    /// A link / channel change.
    Link {
        /// True when moving toward the secondary AP.
        to_secondary: bool,
    },
    /// A power-management transition as seen by an AP.
    Power {
        /// True when the client told this AP it is asleep.
        sleeping: bool,
    },
    /// A strategy decision, with the sequence number that triggered it
    /// (0 when not applicable).
    Decision {
        /// Which decision.
        kind: DecisionKind,
        /// Triggering sequence number, if any.
        seq: u64,
    },
    /// A transport-layer data point: segment sequence and flight size.
    Transport {
        /// Transport-level sequence number.
        seq: u64,
        /// Segments in flight (cwnd occupancy) after the event.
        flight: u16,
    },
    /// An uninterpreted value, for ad-hoc instrumentation.
    Value(u64),
    /// An injected-fault state change: which window of the run's
    /// [`crate::fault::FaultPlan`] and which edge (onset / clear /
    /// service recovered).
    Fault {
        /// Index of the window in `FaultPlan::windows()` order.
        window: u16,
        /// The edge being recorded.
        edge: FaultEdge,
    },
}

/// Which edge of a fault window a [`TraceDetail::Fault`] event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub enum FaultEdge {
    /// The impairment began.
    Onset,
    /// The impairment cleared (device healthy again).
    Clear,
    /// First in-deadline stream delivery after the impairment cleared.
    Recovered,
}

impl FaultEdge {
    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            FaultEdge::Onset => "onset",
            FaultEdge::Clear => "clear",
            FaultEdge::Recovered => "recovered",
        }
    }
}

impl fmt::Display for TraceDetail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceDetail::None => Ok(()),
            TraceDetail::Seq(seq) => write!(f, "seq={seq}"),
            TraceDetail::Queue { seq, depth, cap } => {
                write!(f, "seq={seq} depth={depth}/{cap}")
            }
            TraceDetail::Drop { seq, head } => {
                write!(f, "seq={seq} {}", if head { "head" } else { "tail" })
            }
            TraceDetail::Air { seq, attempts, dur_us } => {
                write!(f, "seq={seq} attempts={attempts} dur={dur_us}us")
            }
            TraceDetail::Link { to_secondary } => {
                write!(f, "to={}", if to_secondary { "secondary" } else { "primary" })
            }
            TraceDetail::Power { sleeping } => {
                write!(f, "pm={}", if sleeping { "sleep" } else { "awake" })
            }
            TraceDetail::Decision { kind, seq } => {
                if seq != 0 {
                    write!(f, "{} seq={seq}", kind.name())
                } else {
                    f.write_str(kind.name())
                }
            }
            TraceDetail::Transport { seq, flight } => {
                write!(f, "seq={seq} flight={flight}")
            }
            TraceDetail::Value(v) => write!(f, "value={v}"),
            TraceDetail::Fault { window, edge } => {
                write!(f, "window={window} {}", edge.name())
            }
        }
    }
}

/// One structured trace record — 32 bytes, `Copy`, no heap pointers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened (simulation time).
    pub at: SimTime,
    /// What kind of event.
    pub kind: TraceKind,
    /// Which component emitted it.
    pub who: ComponentId,
    /// Fixed-payload detail.
    pub detail: TraceDetail,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:?} {} {}", self.at, self.kind, self.who, self.detail)
    }
}

/// Receiver of trace events.
pub trait TraceSink {
    /// Record one event. Implementations must be cheap when disabled.
    fn record(&mut self, event: TraceEvent);

    /// Fast-path check so emitters can skip building details entirely.
    fn enabled(&self) -> bool {
        true
    }
}

/// Discards everything; `enabled()` is false so callers skip formatting.
#[derive(Default, Clone, Copy, Debug)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: TraceEvent) {}
    fn enabled(&self) -> bool {
        false
    }
}

/// Records events in memory, optionally filtered by kind and optionally
/// bounded.
///
/// At capacity the sink stops admitting (tail-drop) but counts every
/// rejected event in [`dropped`](Self::dropped), so a truncated trace is
/// always detectable — never silent.
#[derive(Default, Debug)]
pub struct RecordingSink {
    events: Vec<TraceEvent>,
    filter: Option<Vec<TraceKind>>,
    capacity: Option<usize>,
    dropped: u64,
}

impl RecordingSink {
    /// Record all kinds, unbounded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record only the listed kinds.
    pub fn filtered(kinds: Vec<TraceKind>) -> Self {
        RecordingSink { filter: Some(kinds), ..Self::default() }
    }

    /// Record at most `capacity` events; further events are counted in
    /// [`dropped`](Self::dropped) instead of silently vanishing.
    pub fn bounded(capacity: usize) -> Self {
        RecordingSink { capacity: Some(capacity), ..Self::default() }
    }

    /// Restrict an existing sink to the listed kinds (builder style).
    pub fn with_filter(mut self, kinds: Vec<TraceKind>) -> Self {
        self.filter = Some(kinds);
        self
    }

    /// All recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Recorded events of one kind.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Count of recorded events of one kind.
    pub fn count(&self, kind: TraceKind) -> usize {
        self.of_kind(kind).count()
    }

    /// Events rejected because the sink was at capacity. Filtered-out
    /// kinds are *not* counted — they were never wanted.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain all events out of the sink (the drop counter is kept).
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

impl TraceSink for RecordingSink {
    fn record(&mut self, event: TraceEvent) {
        if let Some(filter) = &self.filter {
            if !filter.contains(&event.kind) {
                return;
            }
        }
        if let Some(cap) = self.capacity {
            if self.events.len() >= cap {
                self.dropped += 1;
                return;
            }
        }
        self.events.push(event);
    }
}

/// A bounded ring of `(seq, event)` pairs: the per-worker telemetry sink.
///
/// Every admitted event gets a monotonically increasing sequence number;
/// at capacity the *oldest* event is evicted (the tail of a run matters
/// more than its start) and counted in [`dropped`](Self::dropped).
/// Because eviction is strictly from the front, the surviving events are
/// the contiguous suffix `dropped..next_seq` of the emission order — which
/// is what makes the deterministic (time, run, seq) merge in
/// `SweepRunner::run_indexed_traced` possible.
#[derive(Default, Debug)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (0 disables recording).
    pub fn new(capacity: usize) -> RingSink {
        RingSink { buf: VecDeque::new(), capacity, ..RingSink::default() }
    }

    /// Clear contents and counters, adopt a (possibly new) capacity, and
    /// keep the allocated buffer for reuse.
    pub fn reset(&mut self, capacity: usize) {
        self.buf.clear();
        self.capacity = capacity;
        self.next_seq = 0;
        self.dropped = 0;
    }

    /// Admit one event, evicting the oldest at capacity.
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            self.next_seq += 1;
            return;
        }
        if self.buf.len() >= self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
        self.next_seq += 1;
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted (or rejected) so far. Equals the sequence number of
    /// the oldest surviving event.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Move the surviving events out in emission order, keeping the
    /// ring's allocation for the next run. Returns `(first_seq, events)`:
    /// event `i` of the returned vector has sequence `first_seq + i`.
    pub fn drain(&mut self) -> (u64, Vec<TraceEvent>) {
        let first = self.dropped;
        (first, self.buf.drain(..).collect())
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: TraceEvent) {
        RingSink::record(self, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ms: u64, kind: TraceKind, seq: u64) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_millis(ms),
            kind,
            who: ComponentId::client(),
            detail: TraceDetail::Seq(seq),
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        let s = NullSink;
        assert!(!s.enabled());
    }

    #[test]
    fn recording_sink_records_in_order() {
        let mut s = RecordingSink::new();
        for i in 0..5u64 {
            s.record(ev(i, TraceKind::Delivery, i));
        }
        assert_eq!(s.events().len(), 5);
        assert_eq!(s.events()[3].detail, TraceDetail::Seq(3));
        assert_eq!(s.count(TraceKind::Delivery), 5);
        assert_eq!(s.count(TraceKind::AirLoss), 0);
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn filtered_sink_drops_other_kinds() {
        let mut s = RecordingSink::filtered(vec![TraceKind::QueueDrop]);
        s.record(ev(0, TraceKind::Delivery, 1));
        s.record(ev(0, TraceKind::QueueDrop, 2));
        assert_eq!(s.events().len(), 1);
        assert_eq!(s.events()[0].kind, TraceKind::QueueDrop);
        // Filtered-out events are not "dropped": they were never wanted.
        assert_eq!(s.dropped(), 0);
    }

    /// Regression for the silent-at-capacity behaviour: a bounded sink must
    /// count exactly the rejected events and keep the earliest ones.
    #[test]
    fn bounded_sink_counts_overflow() {
        let mut s = RecordingSink::bounded(3);
        for i in 0..10u64 {
            s.record(ev(i, TraceKind::Enqueue, i));
        }
        assert_eq!(s.events().len(), 3);
        assert_eq!(s.dropped(), 7);
        // Tail-drop: the first three survive.
        assert_eq!(s.events()[0].detail, TraceDetail::Seq(0));
        assert_eq!(s.events()[2].detail, TraceDetail::Seq(2));
        // Filter composes with the bound: only counted kinds use capacity.
        let mut f = RecordingSink::bounded(2).with_filter(vec![TraceKind::Delivery]);
        for i in 0..6u64 {
            f.record(ev(i, if i % 2 == 0 { TraceKind::Delivery } else { TraceKind::Enqueue }, i));
        }
        assert_eq!(f.events().len(), 2);
        assert_eq!(f.dropped(), 1); // seq=4 delivery rejected; enqueues not counted
    }

    #[test]
    fn ring_sink_evicts_oldest_and_keeps_suffix() {
        let mut r = RingSink::new(4);
        for i in 0..10u64 {
            r.record(ev(i, TraceKind::Delivery, i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let (first_seq, events) = r.drain();
        assert_eq!(first_seq, 6);
        let seqs: Vec<u64> = events
            .iter()
            .map(|e| match e.detail {
                TraceDetail::Seq(s) => s,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        // reset() reuses the buffer and restarts counters.
        r.reset(2);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        r.record(ev(0, TraceKind::Enqueue, 0));
        assert_eq!(r.drain().1.len(), 1);
    }

    #[test]
    fn zero_capacity_ring_counts_everything() {
        let mut r = RingSink::new(0);
        for i in 0..5u64 {
            r.record(ev(i, TraceKind::Enqueue, i));
        }
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 5);
    }

    #[test]
    fn component_display() {
        assert_eq!(ComponentId::ap(1).to_string(), "ap:1");
        assert_eq!(ComponentId::mac(0).to_string(), "mac:0");
        assert_eq!(ComponentId::client().to_string(), "client");
        assert_eq!(ComponentId::middlebox().to_string(), "middlebox");
        assert_eq!(ComponentId::world().to_string(), "world");
    }

    #[test]
    fn detail_display() {
        assert_eq!(TraceDetail::Seq(9).to_string(), "seq=9");
        assert_eq!(TraceDetail::Queue { seq: 4, depth: 2, cap: 10 }.to_string(), "seq=4 depth=2/10");
        assert_eq!(TraceDetail::Drop { seq: 7, head: true }.to_string(), "seq=7 head");
        assert_eq!(
            TraceDetail::Air { seq: 1, attempts: 3, dur_us: 850 }.to_string(),
            "seq=1 attempts=3 dur=850us"
        );
        assert_eq!(TraceDetail::Link { to_secondary: true }.to_string(), "to=secondary");
        assert_eq!(TraceDetail::Power { sleeping: false }.to_string(), "pm=awake");
        assert_eq!(
            TraceDetail::Decision { kind: DecisionKind::MiddleboxStart, seq: 42 }.to_string(),
            "middlebox_start seq=42"
        );
        assert_eq!(TraceDetail::Transport { seq: 5, flight: 3 }.to_string(), "seq=5 flight=3");
        assert_eq!(
            TraceDetail::Fault { window: 2, edge: FaultEdge::Onset }.to_string(),
            "window=2 onset"
        );
        assert_eq!(
            TraceDetail::Fault { window: 0, edge: FaultEdge::Recovered }.to_string(),
            "window=0 recovered"
        );
        assert_eq!(TraceDetail::None.to_string(), "");
    }

    #[test]
    fn event_display_format() {
        let e = TraceEvent {
            at: SimTime::from_millis(20),
            kind: TraceKind::LinkSwitch,
            who: ComponentId::client(),
            detail: TraceDetail::Link { to_secondary: true },
        };
        let s = e.to_string();
        assert!(s.contains("LinkSwitch"));
        assert!(s.contains("client"));
        assert!(s.contains("to=secondary"));
    }

    #[test]
    fn event_is_small_and_copy() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<TraceEvent>();
        // The whole point of the rework: fixed-size records, no Strings.
        assert!(std::mem::size_of::<TraceEvent>() <= 40, "{}", std::mem::size_of::<TraceEvent>());
    }

    #[test]
    fn take_drains() {
        let mut s = RecordingSink::new();
        s.record(ev(0, TraceKind::Decision, 0));
        let taken = s.take();
        assert_eq!(taken.len(), 1);
        assert!(s.events().is_empty());
    }
}
