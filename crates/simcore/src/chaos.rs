//! Adversarial fault-plan fuzzing: seeded plan generation under a budget,
//! plus delta-debugging shrinking to minimal reproducers.
//!
//! The resilience suite (`repro --resilience`, `tests/failure_injection.rs`)
//! checks seven hand-picked fault windows. The chaos engine explores the
//! *composed* fault space instead: [`generate_plan`] draws a
//! random-but-seeded [`FaultPlan`] over the full [`FaultKind`] catalogue,
//! constrained by a [`ChaosBudget`] (spec count, concurrent-fault cap,
//! total-outage fraction, per-kind weights). Generation is a pure function
//! of `(SeedFactory, plan index, budget)` — plan `i` is byte-identical on
//! every machine, thread count and run, which is what lets a violating
//! index double as a replay handle.
//!
//! When an oracle rejects a plan, [`shrink_plan`] minimises it by classic
//! delta debugging with a **fixed candidate order** (so the minimal
//! reproducer is as deterministic as the violation itself):
//!
//! 1. **drop specs** — remove one spec at a time, front to back, restarting
//!    after every accepted removal;
//! 2. **shorten outages** — halve each spec's durations (floor
//!    [`SHRINK_FLOOR`]), re-trying a spec while halving keeps violating;
//! 3. **halve flap cycles** — `cycles /= 2` (floor 1) per flap spec.
//!
//! The three passes repeat until a full round accepts nothing. Every
//! acceptance strictly decreases `(spec count, total duration ns, total
//! cycles)`, so the loop terminates without a fuel counter (one exists
//! anyway as a backstop).
//!
//! A minimal plan is committed to the chaos corpus as a
//! [`ChaosReproducer`] — the proptest-regressions idiom: the corpus is
//! replayed by CI forever after, so a fixed bug stays fixed.
//!
//! The module is deliberately world-agnostic: oracles live in the core
//! crate (paired diversifi-vs-primary-only runs); everything here is pure
//! data and pure functions, and therefore unit-testable with synthetic
//! oracles.

use crate::fault::{FaultKind, FaultPlan, FaultSpec};
use crate::rng::SeedFactory;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Size of the [`FaultKind`] catalogue (and of [`ChaosBudget::weights`]).
pub const FAULT_KIND_COUNT: usize = 6;

/// Durations never shrink below this floor (100 ms): shorter windows stop
/// exercising anything (a sub-RTT outage is invisible to the control
/// plane) and the shrinker would waste its budget halving noise.
pub const SHRINK_FLOOR: SimDuration = SimDuration::from_millis(100);

/// Generation quantum: onsets and durations are drawn on a 100 ms grid, so
/// shrunk reproducers stay human-readable and tiny perturbations of the
/// generator can't smear plans across meaninglessly distinct values.
const QUANTUM_MS: u64 = 100;

/// Resource limits for one generated [`FaultPlan`].
///
/// The budget is what keeps adversarial plans *interesting*: without it
/// the fuzzer converges on "everything down for the whole call", where
/// every oracle trivially holds (the baseline is equally dead). Weights
/// bias the catalogue; a zero weight removes that kind entirely.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChaosBudget {
    /// Call horizon plans are generated against: every window must clear
    /// (`end` + slack) before it, so recovery oracles have room to fire.
    pub horizon: SimDuration,
    /// Maximum specs per plan.
    pub max_specs: usize,
    /// Maximum simultaneously-open fault windows at any instant.
    pub max_concurrent: usize,
    /// Cap on the summed window durations as a fraction of `horizon`.
    pub max_outage_frac: f64,
    /// Per-kind draw weights, indexed in [`FaultKind::label`] declaration
    /// order: `[ap_power_cycle, ap_flap, middlebox_restart, brownout,
    /// uplink_outage, interference_storm]`.
    pub weights: [u32; FAULT_KIND_COUNT],
}

impl Default for ChaosBudget {
    fn default() -> ChaosBudget {
        ChaosBudget {
            horizon: SimDuration::from_secs(10),
            max_specs: 4,
            max_concurrent: 2,
            max_outage_frac: 0.4,
            weights: [1; FAULT_KIND_COUNT],
        }
    }
}

impl ChaosBudget {
    /// A default budget against an explicit call horizon.
    pub fn for_horizon(horizon: SimDuration) -> ChaosBudget {
        ChaosBudget { horizon, ..ChaosBudget::default() }
    }

    /// Does `plan` satisfy every budget constraint?
    pub fn admits(&self, plan: &FaultPlan) -> bool {
        if plan.specs.len() > self.max_specs {
            return false;
        }
        let windows = plan.windows();
        let mut total = SimDuration::ZERO;
        for w in &windows {
            if w.end > SimTime::ZERO + self.horizon {
                return false;
            }
            total += w.end.saturating_since(w.start);
        }
        if total.as_nanos() as f64 > self.max_outage_frac * self.horizon.as_nanos() as f64 {
            return false;
        }
        max_concurrency(plan) <= self.max_concurrent
    }
}

/// The largest number of fault windows simultaneously open at any instant
/// of `plan` (half-open `[start, end)` semantics: a window ending exactly
/// when another starts does not overlap it).
pub fn max_concurrency(plan: &FaultPlan) -> usize {
    let mut edges: Vec<(SimTime, i32)> = Vec::new();
    for w in plan.windows() {
        if w.start < w.end {
            edges.push((w.start, 1));
            edges.push((w.end, -1));
        }
    }
    // Closes sort before opens at equal instants (half-open intervals).
    edges.sort_by_key(|&(t, d)| (t, d));
    let (mut open, mut peak) = (0i32, 0i32);
    for (_, d) in edges {
        open += d;
        peak = peak.max(open);
    }
    peak.max(0) as usize
}

/// Summed window durations of `plan` as a fraction of `horizon`.
pub fn outage_fraction(plan: &FaultPlan, horizon: SimDuration) -> f64 {
    if horizon.is_zero() {
        return 0.0;
    }
    let total: u64 = plan
        .windows()
        .iter()
        .map(|w| w.end.saturating_since(w.start).as_nanos())
        .sum();
    total as f64 / horizon.as_nanos() as f64
}

/// Generate plan `index` from `seeds` under `budget`.
///
/// Pure function of its arguments: draws come from the dedicated stream
/// `("chaos.plan", index)`, and — crucially for determinism — the *same
/// draws happen in the same order whether or not a candidate spec is
/// kept*. A spec that would break the budget is simply discarded after the
/// fact, so acceptance never feeds back into the stream position.
pub fn generate_plan(seeds: &SeedFactory, index: u64, budget: &ChaosBudget) -> FaultPlan {
    let mut rng = seeds.stream("chaos.plan", index);
    let total_weight: u64 = budget.weights.iter().map(|&w| w as u64).sum();
    if total_weight == 0 || budget.max_specs == 0 {
        return FaultPlan::none();
    }
    let horizon_ms = budget.horizon.as_millis().max(2 * QUANTUM_MS);
    // Onsets land in the middle 10%–75% of the call: late enough that the
    // system reached steady state, early enough that every window (and
    // its recovery) clears before end of run.
    let onset_lo = (horizon_ms / 10).max(QUANTUM_MS);
    let onset_hi = (horizon_ms * 3 / 4).max(onset_lo + QUANTUM_MS);
    // Single-window durations: one quantum up to a fifth of the call.
    let dur_lo = QUANTUM_MS;
    let dur_hi = (horizon_ms / 5).max(dur_lo + QUANTUM_MS);
    let quant = |ms: u64| (ms / QUANTUM_MS).max(1) * QUANTUM_MS;

    let n_target = 1 + rng.index(budget.max_specs);
    let mut plan = FaultPlan::none();
    for _ in 0..n_target {
        let at = SimTime::from_millis(quant(rng.range_u64(onset_lo, onset_hi)));
        let outage = SimDuration::from_millis(quant(rng.range_u64(dur_lo, dur_hi)));
        // Every per-kind parameter is drawn unconditionally so the stream
        // position after a spec is independent of which kind it was.
        let ap = rng.index(2);
        let flap_down = SimDuration::from_millis(quant(rng.range_u64(200, 1200)));
        let flap_up = SimDuration::from_millis(quant(rng.range_u64(300, 2000)));
        let flap_cycles = 1 + rng.index(4) as u32;
        let reinstall = SimDuration::from_millis(quant(rng.range_u64(100, 800)));
        let extra_delay = SimDuration::from_millis(rng.range_u64(5, 40));
        let control_loss = 0.1 * rng.range_u64(1, 9) as f64;
        let erasure = 0.05 * rng.range_u64(1, 12) as f64;
        let link = match rng.index(3) {
            0 => Some(0),
            1 => Some(1),
            _ => None,
        };
        let mut pick = rng.range_u64(0, total_weight);
        let mut kind_idx = 0usize;
        for (k, &w) in budget.weights.iter().enumerate() {
            if pick < w as u64 {
                kind_idx = k;
                break;
            }
            pick -= w as u64;
        }
        let kind = match kind_idx {
            0 => FaultKind::ApPowerCycle { ap, outage },
            1 => FaultKind::ApFlap { ap, down: flap_down, up: flap_up, cycles: flap_cycles },
            2 => FaultKind::MiddleboxRestart { outage, reinstall_delay: reinstall },
            3 => FaultKind::Brownout { duration: outage, extra_delay, control_loss },
            4 => FaultKind::UplinkOutage { duration: outage },
            _ => FaultKind::InterferenceStorm { duration: outage, erasure, link },
        };
        plan.specs.push(FaultSpec { at, kind });
        if !budget.admits(&plan) {
            plan.specs.pop();
        }
    }
    plan
}

/// What one shrink run did.
#[derive(Clone, Debug, PartialEq)]
pub struct ShrinkOutcome {
    /// The minimal still-violating plan.
    pub minimal: FaultPlan,
    /// Oracle evaluations spent.
    pub tried: u64,
    /// Candidates accepted (each strictly smaller than its predecessor).
    pub accepted: u64,
}

/// Fuel backstop: the measure argument proves termination, this bounds a
/// buggy (non-deterministic) oracle instead of hanging CI.
const SHRINK_FUEL: u64 = 10_000;

/// Halve every duration inside `kind`, flooring at [`SHRINK_FLOOR`].
/// Returns `None` when nothing can shrink further.
fn halve_durations(kind: &FaultKind) -> Option<FaultKind> {
    let halve = |d: SimDuration| -> Option<SimDuration> {
        if d <= SHRINK_FLOOR {
            None
        } else {
            let h = d / 2;
            Some(if h < SHRINK_FLOOR { SHRINK_FLOOR } else { h })
        }
    };
    match *kind {
        FaultKind::ApPowerCycle { ap, outage } => {
            Some(FaultKind::ApPowerCycle { ap, outage: halve(outage)? })
        }
        FaultKind::ApFlap { ap, down, up, cycles } => {
            // The healthy gap is not an outage; only `down` shrinks.
            Some(FaultKind::ApFlap { ap, down: halve(down)?, up, cycles })
        }
        FaultKind::MiddleboxRestart { outage, reinstall_delay } => {
            Some(FaultKind::MiddleboxRestart { outage: halve(outage)?, reinstall_delay })
        }
        FaultKind::Brownout { duration, extra_delay, control_loss } => {
            Some(FaultKind::Brownout { duration: halve(duration)?, extra_delay, control_loss })
        }
        FaultKind::UplinkOutage { duration } => {
            Some(FaultKind::UplinkOutage { duration: halve(duration)? })
        }
        FaultKind::InterferenceStorm { duration, erasure, link } => {
            Some(FaultKind::InterferenceStorm { duration: halve(duration)?, erasure, link })
        }
    }
}

/// Delta-debug `plan` down to a minimal plan for which `still_violates`
/// remains true. `plan` itself must violate (callers check before
/// shrinking); the result is returned unchanged if no smaller candidate
/// violates.
///
/// The candidate order is fixed (see the [module docs](self)), so with a
/// deterministic oracle the minimal reproducer is a pure function of the
/// input plan — the property the planted-canary test pins across thread
/// counts.
pub fn shrink_plan<F>(plan: &FaultPlan, mut still_violates: F) -> ShrinkOutcome
where
    F: FnMut(&FaultPlan) -> bool,
{
    let mut current = plan.clone();
    let mut tried = 0u64;
    let mut accepted = 0u64;
    let mut check = |cand: &FaultPlan, tried: &mut u64| -> bool {
        *tried += 1;
        still_violates(cand)
    };
    loop {
        let mut changed = false;

        // Pass 1: drop whole specs, front to back, restarting on success
        // so earlier specs get re-tried against the smaller plan.
        let mut i = 0;
        while i < current.specs.len() && tried < SHRINK_FUEL {
            if current.specs.len() == 1 {
                break; // an empty plan cannot violate a fault oracle
            }
            let mut cand = current.clone();
            cand.specs.remove(i);
            if check(&cand, &mut tried) {
                current = cand;
                accepted += 1;
                changed = true;
                i = 0;
            } else {
                i += 1;
            }
        }

        // Pass 2: shorten outages — halve each spec's durations while the
        // halved plan still violates.
        for i in 0..current.specs.len() {
            while tried < SHRINK_FUEL {
                let Some(kind) = halve_durations(&current.specs[i].kind) else { break };
                let mut cand = current.clone();
                cand.specs[i].kind = kind;
                if check(&cand, &mut tried) {
                    current = cand;
                    accepted += 1;
                    changed = true;
                } else {
                    break;
                }
            }
        }

        // Pass 3: halve flap cycles (floor 1).
        for i in 0..current.specs.len() {
            while tried < SHRINK_FUEL {
                let FaultKind::ApFlap { ap, down, up, cycles } = current.specs[i].kind else {
                    break;
                };
                if cycles <= 1 {
                    break;
                }
                let mut cand = current.clone();
                cand.specs[i].kind = FaultKind::ApFlap { ap, down, up, cycles: cycles / 2 };
                if check(&cand, &mut tried) {
                    current = cand;
                    accepted += 1;
                    changed = true;
                } else {
                    break;
                }
            }
        }

        if !changed || tried >= SHRINK_FUEL {
            return ShrinkOutcome { minimal: current, tried, accepted };
        }
    }
}

/// One committed chaos-corpus entry: the minimal plan a shrink run
/// produced, plus everything needed to replay it (proptest-regressions
/// style — the corpus is replayed by CI so a fixed bug stays fixed).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChaosReproducer {
    /// Master seed of the chaos campaign that found it.
    pub seed: u64,
    /// Plan index within that campaign (the replay handle for the paired
    /// world seeds).
    pub index: u64,
    /// Which oracle tripped (`"no-amplification"`, `"engine-panic"`,
    /// `"unbounded-mttr"`, `"non-deterministic"`).
    pub oracle: String,
    /// Human-readable violation detail captured at find time.
    pub detail: String,
    /// Spec count of the plan as generated, before shrinking.
    pub original_specs: u64,
    /// The minimal still-violating plan.
    pub plan: FaultPlan,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let budget = ChaosBudget::for_horizon(secs(10));
        let a = SeedFactory::new(0xC8A05);
        let b = SeedFactory::new(0xC8A05);
        let c = SeedFactory::new(0xC8A06);
        let mut differs = false;
        for i in 0..64 {
            assert_eq!(generate_plan(&a, i, &budget), generate_plan(&b, i, &budget));
            differs |= generate_plan(&a, i, &budget) != generate_plan(&c, i, &budget);
        }
        assert!(differs, "different master seeds should generate different plans");
    }

    #[test]
    fn generated_plans_respect_the_budget() {
        let budget = ChaosBudget {
            horizon: secs(10),
            max_specs: 3,
            max_concurrent: 2,
            max_outage_frac: 0.3,
            weights: [1; FAULT_KIND_COUNT],
        };
        let seeds = SeedFactory::new(7);
        let mut non_empty = 0;
        for i in 0..500 {
            let plan = generate_plan(&seeds, i, &budget);
            assert!(budget.admits(&plan), "plan {i} violates its own budget: {plan:?}");
            assert!(plan.specs.len() <= 3);
            assert!(max_concurrency(&plan) <= 2);
            assert!(outage_fraction(&plan, budget.horizon) <= 0.3 + 1e-12);
            for w in plan.windows() {
                assert!(w.end <= SimTime::ZERO + budget.horizon, "window past horizon");
                assert!(w.start < w.end, "zero-length window");
            }
            non_empty += usize::from(!plan.is_empty());
        }
        assert!(non_empty > 400, "budget this loose should almost always admit something");
    }

    #[test]
    fn weights_select_kinds() {
        // Only uplink outages allowed.
        let mut budget = ChaosBudget::for_horizon(secs(10));
        budget.weights = [0, 0, 0, 0, 1, 0];
        let seeds = SeedFactory::new(9);
        let mut seen = 0;
        for i in 0..100 {
            let plan = generate_plan(&seeds, i, &budget);
            for s in &plan.specs {
                assert!(matches!(s.kind, FaultKind::UplinkOutage { .. }), "{:?}", s.kind);
                seen += 1;
            }
        }
        assert!(seen > 50);
        // All-zero weights generate nothing.
        budget.weights = [0; FAULT_KIND_COUNT];
        assert!(generate_plan(&seeds, 0, &budget).is_empty());
    }

    #[test]
    fn concurrency_counts_overlaps_half_open() {
        let plan = FaultPlan::none()
            .with(SimTime::from_secs(1), FaultKind::UplinkOutage { duration: secs(2) })
            .with(SimTime::from_secs(2), FaultKind::Brownout {
                duration: secs(2),
                extra_delay: SimDuration::from_millis(10),
                control_loss: 0.2,
            })
            // Starts exactly when the first ends: no overlap with it.
            .with(SimTime::from_secs(3), FaultKind::UplinkOutage { duration: secs(1) });
        assert_eq!(max_concurrency(&plan), 2);
        assert!(outage_fraction(&plan, secs(10)) > 0.49);
        assert!(outage_fraction(&plan, secs(10)) < 0.51);
    }

    #[test]
    fn shrinker_drops_irrelevant_specs_and_shortens_durations() {
        // Synthetic oracle: violates iff the plan contains any brownout.
        let oracle =
            |p: &FaultPlan| p.specs.iter().any(|s| matches!(s.kind, FaultKind::Brownout { .. }));
        let plan = FaultPlan::none()
            .with(SimTime::from_secs(1), FaultKind::UplinkOutage { duration: secs(2) })
            .with(SimTime::from_secs(2), FaultKind::Brownout {
                duration: secs(4),
                extra_delay: SimDuration::from_millis(20),
                control_loss: 0.5,
            })
            .with(
                SimTime::from_secs(4),
                FaultKind::ApFlap { ap: 1, down: secs(1), up: secs(1), cycles: 4 },
            );
        assert!(oracle(&plan));
        let out = shrink_plan(&plan, oracle);
        assert_eq!(out.minimal.specs.len(), 1, "only the brownout matters: {:?}", out.minimal);
        match out.minimal.specs[0].kind {
            FaultKind::Brownout { duration, .. } => {
                assert_eq!(duration, SHRINK_FLOOR, "duration must shrink to the floor")
            }
            ref k => panic!("wrong surviving spec: {k:?}"),
        }
        assert!(out.accepted >= 2);
        assert!(out.tried >= out.accepted);
    }

    #[test]
    fn shrinker_halves_flap_cycles_to_one() {
        let oracle =
            |p: &FaultPlan| p.specs.iter().any(|s| matches!(s.kind, FaultKind::ApFlap { .. }));
        let plan = FaultPlan::none().with(
            SimTime::from_secs(1),
            FaultKind::ApFlap { ap: 0, down: secs(2), up: secs(1), cycles: 8 },
        );
        let out = shrink_plan(&plan, oracle);
        match out.minimal.specs[0].kind {
            FaultKind::ApFlap { down, cycles, .. } => {
                assert_eq!(cycles, 1);
                assert_eq!(down, SHRINK_FLOOR);
            }
            ref k => panic!("{k:?}"),
        }
    }

    #[test]
    fn shrinking_is_deterministic() {
        // Oracle keyed on total outage: violates while total windows ≥ 1s.
        let oracle = |p: &FaultPlan| outage_fraction(p, secs(10)) >= 0.1;
        let seeds = SeedFactory::new(0x51AB);
        let budget = ChaosBudget::for_horizon(secs(10));
        for i in 0..50 {
            let plan = generate_plan(&seeds, i, &budget);
            if !oracle(&plan) {
                continue;
            }
            let a = shrink_plan(&plan, oracle);
            let b = shrink_plan(&plan, oracle);
            assert_eq!(a, b, "shrink of plan {i} must be deterministic");
            assert!(oracle(&a.minimal), "minimal plan must still violate");
        }
    }

    #[test]
    fn reproducer_round_trips_through_serde() {
        use serde::{Deserialize as _, Serialize as _, Value};
        let seeds = SeedFactory::new(3);
        let rep = ChaosReproducer {
            seed: 3,
            index: 17,
            oracle: "no-amplification".to_string(),
            detail: "loss 0.081 vs 0.020".to_string(),
            original_specs: 4,
            plan: generate_plan(&seeds, 17, &ChaosBudget::for_horizon(secs(10))),
        };
        let text = serde_json::to_string(&rep.to_value()).unwrap();
        let v: Value = serde_json::from_str(&text).unwrap();
        let back = ChaosReproducer::from_value(&v).unwrap();
        assert_eq!(rep, back);
    }
}
