//! Per-worker recycling arena for hot-path world state.
//!
//! A corpus sweep builds and tears down one `World` per task — and every
//! construction used to pay dozens of heap allocations: the event queue's
//! heap, slab and free list, the packet trace, the recovery/fault
//! bookkeeping vectors. [`WorkerArena`] is the antidote, following the
//! same per-worker contract as [`MetricsScratch`](crate::MetricsScratch):
//! each sweep worker owns one arena (see `SweepRunner::run_indexed_with`),
//! lends containers to the world under construction, and takes them back —
//! cleared but with capacity intact — when the run finishes. After the
//! first task on a worker, world construction is a handful of pool pops
//! instead of fresh allocations, and container capacity converges to the
//! high-water mark of the tasks that worker claims.
//!
//! The crate forbids `unsafe`, so this is a *typed recycling* arena, not a
//! raw bump allocator: values are stored as `Box<dyn Any>` keyed by their
//! `TypeId`, and [`Recycle::recycle`] defines what "cleared" means for
//! each type (always: empty contents, retained capacity).
//!
//! # Determinism
//!
//! An arena is *only* capacity: every [`take`](WorkerArena::take) returns
//! a value indistinguishable from [`Recycle::fresh`] except for reserved
//! memory, so results never depend on which tasks a worker ran earlier.
//! This is the same contract `MetricsScratch` obeys, and the parity
//! suites (`sweep_equivalence`, `realization_parity`) pin it end to end.

use std::any::{Any, TypeId};
use std::collections::HashMap;

/// A container the arena can pool: constructible empty, clearable back to
/// empty while keeping its allocation.
pub trait Recycle: Any {
    /// A brand-new empty value (what a pool miss returns).
    fn fresh() -> Self
    where
        Self: Sized;
    /// Clear all contents, keeping allocated capacity. Called by
    /// [`WorkerArena::put`] before the value enters the pool, so pooled
    /// values never carry state between runs.
    fn recycle(&mut self);
}

impl<T: 'static> Recycle for Vec<T> {
    fn fresh() -> Self {
        Vec::new()
    }
    fn recycle(&mut self) {
        self.clear();
    }
}

impl<T: 'static> Recycle for std::collections::VecDeque<T> {
    fn fresh() -> Self {
        std::collections::VecDeque::new()
    }
    fn recycle(&mut self) {
        self.clear();
    }
}

/// Counters describing how well the arena is working: `takes` split into
/// pool `hits` vs fresh constructions, and `puts` returned to the pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Values handed out by [`WorkerArena::take`].
    pub takes: u64,
    /// Takes served from the pool (capacity reused).
    pub hits: u64,
    /// Values returned via [`WorkerArena::put`].
    pub puts: u64,
}

/// A per-worker pool of recycled containers, keyed by type.
///
/// Not `Sync` on purpose: like `MetricsScratch`, one arena belongs to one
/// sweep worker. See the [module docs](self) for the determinism
/// contract.
#[derive(Debug, Default)]
pub struct WorkerArena {
    pools: HashMap<TypeId, Vec<Box<dyn Any>>>,
    stats: ArenaStats,
}

impl WorkerArena {
    /// An empty arena (no allocation until the first [`put`](Self::put)).
    pub fn new() -> WorkerArena {
        WorkerArena::default()
    }

    /// Take a `T` out of the pool — recycled capacity if one is pooled,
    /// [`Recycle::fresh`] otherwise.
    pub fn take<T: Recycle>(&mut self) -> T {
        self.stats.takes += 1;
        if let Some(pool) = self.pools.get_mut(&TypeId::of::<T>()) {
            if let Some(boxed) = pool.pop() {
                self.stats.hits += 1;
                return *boxed.downcast::<T>().expect("arena pool keyed by TypeId");
            }
        }
        T::fresh()
    }

    /// Return a value to the pool for the next run. The value is
    /// recycled (emptied, capacity kept) before it is stored.
    pub fn put<T: Recycle>(&mut self, mut value: T) {
        value.recycle();
        self.stats.puts += 1;
        self.pools.entry(TypeId::of::<T>()).or_default().push(Box::new(value));
    }

    /// Usage counters since construction.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Number of values currently pooled, across all types.
    pub fn pooled(&self) -> usize {
        self.pools.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_miss_then_hit_reuses_capacity() {
        let mut a = WorkerArena::new();
        let v: Vec<u64> = a.take();
        assert!(v.is_empty() && v.capacity() == 0);
        let mut v = v;
        v.extend(0..100);
        let cap = v.capacity();
        a.put(v);
        assert_eq!(a.pooled(), 1);
        let v2: Vec<u64> = a.take();
        assert!(v2.is_empty(), "recycled values must come back empty");
        assert_eq!(v2.capacity(), cap, "recycled values keep their capacity");
        assert_eq!(a.stats(), ArenaStats { takes: 2, hits: 1, puts: 1 });
        assert_eq!(a.pooled(), 0);
    }

    #[test]
    fn pools_are_typed() {
        let mut a = WorkerArena::new();
        let mut v: Vec<u64> = Vec::with_capacity(8);
        v.push(1);
        a.put(v);
        // A different element type misses the u64 pool.
        let w: Vec<f64> = a.take();
        assert_eq!(w.capacity(), 0);
        let v: Vec<u64> = a.take();
        assert!(v.capacity() >= 8);
    }

    #[test]
    fn vecdeque_pools() {
        use std::collections::VecDeque;
        let mut a = WorkerArena::new();
        let mut d: VecDeque<u32> = VecDeque::new();
        d.extend(0..32);
        a.put(d);
        let d: VecDeque<u32> = a.take();
        assert!(d.is_empty() && d.capacity() >= 32);
    }
}
