//! Virtual time for the discrete-event simulator.
//!
//! All simulation time is expressed as a [`SimTime`] — nanoseconds since the
//! start of the simulation, stored in a `u64`. A `u64` of nanoseconds covers
//! ~584 years, far beyond any simulated experiment, while giving enough
//! resolution for sub-slot 802.11 MAC timing (a DIFS is 28 µs; a SIFS 10 µs).
//!
//! Durations are a separate newtype, [`SimDuration`], so that the type system
//! prevents the classic bug of adding two absolute timestamps.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute instant in simulated time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel
    /// for components that currently have nothing scheduled.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start as a float (for metrics/reporting only;
    /// never feed this back into event scheduling).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed duration since `earlier`. Saturates to zero if `earlier` is in
    /// the future, which makes "how long since X" robust at boundaries.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` if `earlier > self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Greatest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Panics on negative or non-finite
    /// input — durations in the simulator are always forward.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be finite and non-negative, got {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds (for reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by a float scale factor (used by jitter/backoff models).
    /// Panics on negative or non-finite scale.
    pub fn mul_f64(self, scale: f64) -> SimDuration {
        assert!(scale.is_finite() && scale >= 0.0, "scale must be finite and non-negative, got {scale}");
        SimDuration((self.0 as f64 * scale).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl SubAssign<SimDuration> for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimTime difference underflow"))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// How many whole `rhs` spans fit in `self` (e.g. queue-length math:
    /// `MaxTolerableDelay / InterPacketSpacing`).
    #[inline]
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

fn format_ns(ns: u64) -> String {
    if ns == u64::MAX {
        "inf".to_string()
    } else if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_millis(20).as_nanos(), 20_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_millis(100).as_micros(), 100_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(100);
        let d = SimDuration::from_millis(20);
        assert_eq!((t + d).as_millis(), 120);
        assert_eq!((t - d).as_millis(), 80);
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 5, SimDuration::from_millis(100));
        assert_eq!(d / 2, SimDuration::from_millis(10));
    }

    #[test]
    fn duration_division_gives_queue_length() {
        // Paper's APQueueLen = MaxTolerableDelay / InterPktSpacing = 100/20 = 5.
        let mtd = SimDuration::from_millis(100);
        let ips = SimDuration::from_millis(20);
        assert_eq!(mtd / ips, 5);
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(30);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(20));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimTime::ZERO < SimTime::MAX);
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
    }

    #[test]
    fn float_conversions() {
        assert!((SimDuration::from_millis(2800).as_secs_f64() - 2.8).abs() < 1e-12);
        assert_eq!(SimDuration::from_secs_f64(0.0023), SimDuration::from_micros(2300));
        assert!((SimDuration::from_micros(2300).as_millis_f64() - 2.3).abs() < 1e-12);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(10);
        assert_eq!(d.mul_f64(1.26), SimDuration::from_nanos(13));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimDuration::from_millis(2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(2).to_string(), "2.000us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimTime::from_secs(4).to_string(), "4.000s");
        assert_eq!(SimDuration::MAX.to_string(), "inf");
    }
}
