//! Counters, gauges and fixed-bin log-scale histograms.
//!
//! Components own their instruments directly — a [`LogHistogram`] is a
//! plain struct field recorded into with integer math (no floating point,
//! no allocation) — and *export* them into a [`MetricsRegistry`] snapshot
//! at the end of a run. The registry is just a flat, deterministic list of
//! `(component, name, value)` rows: sweeps merge per-run registries into a
//! per-sweep table, and the exporters in [`crate::export`] render them.
//!
//! # Binning scheme
//!
//! [`LogHistogram`] uses half-octave bins: values 0–3 get exact unit bins,
//! and every power of two above that is split in two (`4, 6, 8, 12, 16,
//! 24, 32, 48, …`). `bin_index` is two integer ops off `leading_zeros`,
//! edges are exactly representable in `u64`, and 128 bins cover the full
//! `u64` range — wide enough for nanosecond latencies and narrow enough
//! (≤ 50% relative error per bin) for queue depths and retry counts.

use std::fmt;

use crate::trace::ComponentId;

/// Number of bins in a [`LogHistogram`].
pub const HIST_BINS: usize = 128;

/// Bin index for a value: exact bins below 4, half-octave bins above.
#[inline]
pub fn bin_index(v: u64) -> usize {
    if v < 4 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros() as usize;
        2 * e + ((v >> (e - 1)) & 1) as usize
    }
}

/// Inclusive lower edge of bin `i` (the smallest value mapping to it).
#[inline]
pub fn bin_lower(i: usize) -> u64 {
    if i < 4 {
        i as u64
    } else {
        let e = i / 2;
        if i.is_multiple_of(2) {
            1u64 << e
        } else {
            3u64 << (e - 1)
        }
    }
}

/// Exclusive upper edge of bin `i` (`u64::MAX` for the last bin, whose
/// upper edge is inclusive).
#[inline]
pub fn bin_upper(i: usize) -> u64 {
    if i + 1 >= HIST_BINS {
        u64::MAX
    } else {
        bin_lower(i + 1)
    }
}

/// A fixed-size log-scale histogram of `u64` samples.
///
/// Recording is branch-light integer math into a fixed array — safe to
/// call on simulation hot paths when telemetry is active. Merging adds
/// bin-wise, so per-run histograms aggregate losslessly across a sweep.
#[derive(Clone)]
pub struct LogHistogram {
    bins: [u64; HIST_BINS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram { bins: [0; HIST_BINS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LogHistogram(n={}, min={}, max={})", self.count, self.min(), self.max)
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.bins[bin_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record a (non-negative) float sample, rounding to the nearest
    /// integer; negatives clamp to zero.
    #[inline]
    pub fn record_f64(&mut self, v: f64) {
        self.record(if v <= 0.0 { 0 } else { v.round() as u64 });
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (exact — tracked outside the bins).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64; HIST_BINS] {
        &self.bins
    }

    /// Approximate quantile: the inclusive lower edge of the bin where the
    /// cumulative count first reaches `q * count` (clamped to the observed
    /// min/max so single-sample histograms answer exactly).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        if rank >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bin_lower(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Add another histogram bin-wise.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Iterator over `(lower_edge, count)` for non-empty bins.
    pub fn nonzero_bins(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bin_lower(i), c))
    }
}

// Checkpoint serialisation (`campaign` shard digests): sparse
// `[bin_index, count]` pairs plus the exact aggregates. The `u128` sum is
// split into two `u64` halves — every field round-trips through JSON
// exactly, which the campaign resume contract (bit-identical merged
// digests) depends on.
impl serde::Serialize for LogHistogram {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        let bins: Vec<Value> = self
            .bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Value::Array(vec![Value::U64(i as u64), Value::U64(c)]))
            .collect();
        Value::Object(vec![
            ("count".to_string(), Value::U64(self.count)),
            ("sum_hi".to_string(), Value::U64((self.sum >> 64) as u64)),
            ("sum_lo".to_string(), Value::U64(self.sum as u64)),
            ("min".to_string(), Value::U64(self.min)),
            ("max".to_string(), Value::U64(self.max)),
            ("bins".to_string(), Value::Array(bins)),
        ])
    }
}

impl serde::Deserialize for LogHistogram {
    fn from_value(v: &serde::Value) -> Result<Self, String> {
        let field = |name: &str| {
            v.get(name)
                .and_then(|f| f.as_u64())
                .ok_or_else(|| format!("LogHistogram: missing/invalid field `{name}`"))
        };
        let mut h = LogHistogram {
            bins: [0; HIST_BINS],
            count: field("count")?,
            sum: ((field("sum_hi")? as u128) << 64) | field("sum_lo")? as u128,
            min: field("min")?,
            max: field("max")?,
        };
        let bins = v
            .get("bins")
            .and_then(|b| b.as_array())
            .ok_or("LogHistogram: missing `bins` array")?;
        for pair in bins {
            let p = pair.as_array().ok_or("LogHistogram: bin entry is not a pair")?;
            let (i, c) = match p {
                [i, c] => (
                    i.as_u64().ok_or("LogHistogram: bad bin index")?,
                    c.as_u64().ok_or("LogHistogram: bad bin count")?,
                ),
                _ => return Err("LogHistogram: bin entry is not a pair".to_string()),
            };
            if i as usize >= HIST_BINS {
                return Err(format!("LogHistogram: bin index {i} out of range"));
            }
            h.bins[i as usize] = c;
        }
        Ok(h)
    }
}

/// One snapshot value in a [`MetricsRegistry`].
//
// A registry holds at most a few dozen rows, so the size spread between
// `Counter` and the fixed-array `Histogram` costs nothing worth a Box's
// per-sample indirection on the record path.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// A monotone count.
    Counter(u64),
    /// A point-in-time level, stored as `(sum, n)` so merged gauges
    /// render as a mean across runs.
    Gauge {
        /// Sum of the gauge readings merged so far.
        sum: f64,
        /// Number of readings.
        n: u64,
    },
    /// A full log-scale distribution.
    Histogram(LogHistogram),
}

/// One `(component, name, value)` row.
#[derive(Clone, Debug)]
pub struct MetricRow {
    /// Which component exported the value.
    pub who: ComponentId,
    /// Stable metric name (static so snapshots never allocate strings).
    pub name: &'static str,
    /// The value.
    pub value: MetricValue,
}

/// A flat, deterministic snapshot of component metrics for one run (or,
/// after merging, one sweep).
///
/// Components push rows in [`export`-time] order; `sort_rows` gives a
/// canonical ordering and `merge_from` folds another run's snapshot in
/// (counters add, gauges average, histograms merge bin-wise).
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    rows: Vec<MetricRow>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Remove all rows, keeping the allocation.
    pub fn clear(&mut self) {
        self.rows.clear();
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been exported.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows, in insertion (or, after [`sort_rows`](Self::sort_rows),
    /// canonical) order.
    pub fn rows(&self) -> &[MetricRow] {
        &self.rows
    }

    /// Export a counter.
    pub fn counter(&mut self, who: ComponentId, name: &'static str, v: u64) {
        self.rows.push(MetricRow { who, name, value: MetricValue::Counter(v) });
    }

    /// Export a gauge reading.
    pub fn gauge(&mut self, who: ComponentId, name: &'static str, v: f64) {
        self.rows.push(MetricRow { who, name, value: MetricValue::Gauge { sum: v, n: 1 } });
    }

    /// Export a histogram (cloned — the component keeps recording into
    /// its own).
    pub fn histogram(&mut self, who: ComponentId, name: &'static str, h: &LogHistogram) {
        self.rows.push(MetricRow { who, name, value: MetricValue::Histogram(h.clone()) });
    }

    /// Look up a row by component and name.
    pub fn get(&self, who: ComponentId, name: &str) -> Option<&MetricValue> {
        self.rows.iter().find(|r| r.who == who && r.name == name).map(|r| &r.value)
    }

    /// Sort rows by `(component, name)` for a canonical, thread-count
    /// independent ordering.
    pub fn sort_rows(&mut self) {
        self.rows.sort_by(|a, b| (a.who, a.name).cmp(&(b.who, b.name)));
    }

    /// Fold another snapshot in: matching `(who, name)` rows combine
    /// (counters add, gauges accumulate toward a mean, histograms merge),
    /// unmatched rows are appended.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for row in &other.rows {
            let pos = self.rows.iter().position(|r| r.who == row.who && r.name == row.name);
            let combined = match pos {
                Some(i) => match (&mut self.rows[i].value, &row.value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                        *a += b;
                        true
                    }
                    (MetricValue::Gauge { sum, n }, MetricValue::Gauge { sum: s2, n: n2 }) => {
                        *sum += s2;
                        *n += n2;
                        true
                    }
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                        a.merge(b);
                        true
                    }
                    // Mismatched types under one name: keep both visible.
                    _ => false,
                },
                None => false,
            };
            if !combined {
                self.rows.push(row.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_edges_are_strictly_monotone() {
        for i in 1..HIST_BINS {
            assert!(bin_lower(i) > bin_lower(i - 1), "bin {i}");
        }
    }

    #[test]
    fn bin_index_respects_edges() {
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7, 8, 11, 12, 13, 100, 1023, 1024, u64::MAX] {
            let i = bin_index(v);
            assert!(bin_lower(i) <= v, "v={v} bin={i}");
            if i + 1 < HIST_BINS {
                assert!(v < bin_lower(i + 1), "v={v} bin={i}");
            }
        }
        // Spot-check the documented edge sequence.
        let edges: Vec<u64> = (0..12).map(bin_lower).collect();
        assert_eq!(edges, vec![0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48]);
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h = LogHistogram::new();
        for v in [1u64, 2, 3, 10, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 1116.0 / 6.0).abs() < 1e-9);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000); // clamped to observed max
        assert!(h.quantile(0.5) <= h.quantile(0.9));
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in 0..500u64 {
            let x = v * v % 7919;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            both.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.bins(), both.bins());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.quantile(0.9), both.quantile(0.9));
    }

    #[test]
    fn registry_merge_and_lookup() {
        let who = ComponentId::ap(0);
        let mut run1 = MetricsRegistry::new();
        run1.counter(who, "drops", 3);
        run1.gauge(who, "load", 0.5);
        let mut h1 = LogHistogram::new();
        h1.record(10);
        run1.histogram(who, "depth", &h1);

        let mut run2 = MetricsRegistry::new();
        run2.counter(who, "drops", 4);
        run2.gauge(who, "load", 1.5);
        let mut h2 = LogHistogram::new();
        h2.record(20);
        run2.histogram(who, "depth", &h2);
        run2.counter(ComponentId::tcp(), "timeouts", 1);

        run1.merge_from(&run2);
        match run1.get(who, "drops") {
            Some(MetricValue::Counter(n)) => assert_eq!(*n, 7),
            other => panic!("{other:?}"),
        }
        match run1.get(who, "load") {
            Some(MetricValue::Gauge { sum, n }) => {
                assert_eq!(*n, 2);
                assert!((sum / *n as f64 - 1.0).abs() < 1e-12);
            }
            other => panic!("{other:?}"),
        }
        match run1.get(who, "depth") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count(), 2),
            other => panic!("{other:?}"),
        }
        assert!(run1.get(ComponentId::tcp(), "timeouts").is_some());
        run1.sort_rows();
        let names: Vec<_> = run1.rows().iter().map(|r| (r.who, r.name)).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn record_f64_clamps_and_rounds() {
        let mut h = LogHistogram::new();
        h.record_f64(-3.0);
        h.record_f64(2.6);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A reference histogram binning through `f64` logarithms: compute the
    /// half-octave bin as `floor(2 * log2(v))` adjusted for the half step,
    /// by scanning the (f64-converted) edge table. Restricted to values
    /// ≤ 2^53 where `u64 → f64` is exact.
    fn reference_bin(v: u64) -> usize {
        if v < 4 {
            return v as usize;
        }
        let x = v as f64;
        let e = x.log2().floor() as usize;
        // log2 rounding near exact powers of two can be off by one; probe
        // the three candidate exponents with exact integer edges.
        for cand_e in [e.saturating_sub(1), e, e + 1] {
            for half in [0usize, 1] {
                let i = 2 * cand_e + half;
                if i < HIST_BINS && bin_lower(i) <= v && v < bin_upper(i) {
                    return i;
                }
            }
        }
        unreachable!("no bin for {v}");
    }

    proptest! {
        /// The integer `leading_zeros` binning agrees with the f64-log
        /// reference everywhere f64 can represent the value exactly.
        #[test]
        fn bin_index_matches_f64_reference(v in 0u64..(1u64 << 53)) {
            prop_assert_eq!(bin_index(v), reference_bin(v));
        }

        /// Bin membership invariant over the full u64 range: every value
        /// lands in a bin whose edges bracket it.
        #[test]
        fn bin_edges_bracket_all_values(v in any::<u64>()) {
            let i = bin_index(v);
            prop_assert!(i < HIST_BINS);
            prop_assert!(bin_lower(i) <= v);
            if i + 1 < HIST_BINS {
                prop_assert!(v < bin_lower(i + 1));
            }
        }

        /// Quantiles are monotone in q and bracketed by min/max.
        #[test]
        fn quantiles_monotone(mut vs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut h = LogHistogram::new();
            for &v in &vs {
                h.record(v);
            }
            vs.sort_unstable();
            let (mut last, qs) = (0u64, [0.0, 0.25, 0.5, 0.75, 0.9, 1.0]);
            for q in qs {
                let got = h.quantile(q);
                prop_assert!(got >= last);
                prop_assert!(got >= h.min() && got <= h.max());
                last = got;
            }
            // The histogram quantile never overshoots the true quantile by
            // more than one bin's relative width (50%) downward.
            let true_median = vs[(vs.len() - 1) / 2];
            let got = h.quantile(0.5);
            prop_assert!(got <= true_median);
            prop_assert!(bin_upper(bin_index(got)) > true_median / 2);
        }

        /// Merge is commutative and associative, bit for bit — the
        /// property the campaign's shard-order-invariant health fold (and
        /// every digest histogram channel) rests on.
        #[test]
        fn merge_is_commutative_and_associative(
            a in proptest::collection::vec(any::<u64>(), 0..60),
            b in proptest::collection::vec(any::<u64>(), 0..60),
            c in proptest::collection::vec(any::<u64>(), 0..60),
        ) {
            let of = |vs: &[u64]| {
                let mut h = LogHistogram::new();
                for &v in vs {
                    h.record(v);
                }
                h
            };
            let same = |x: &LogHistogram, y: &LogHistogram| {
                x.bins == y.bins
                    && x.count == y.count
                    && x.sum == y.sum
                    && x.min == y.min
                    && x.max == y.max
            };

            // Commutativity: a ⊕ b == b ⊕ a.
            let mut ab = of(&a);
            ab.merge(&of(&b));
            let mut ba = of(&b);
            ba.merge(&of(&a));
            prop_assert!(same(&ab, &ba));

            // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
            let mut left = ab.clone();
            left.merge(&of(&c));
            let mut bc = of(&b);
            bc.merge(&of(&c));
            let mut right = of(&a);
            right.merge(&bc);
            prop_assert!(same(&left, &right));

            // And merging equals recording the concatenated stream.
            let mut all = a.clone();
            all.extend_from_slice(&b);
            all.extend_from_slice(&c);
            prop_assert!(same(&left, &of(&all)));
        }
    }
}
