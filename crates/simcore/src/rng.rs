//! Deterministic random-number streams.
//!
//! Every stochastic component in the simulator (each link's fading process,
//! each interference source, each jitter model, …) draws from its **own**
//! stream, derived from the scenario's master seed and a stable string label.
//! This guarantees two properties that ad-hoc `rand::thread_rng()` use would
//! destroy:
//!
//! 1. **Reproducibility** — a run is a pure function of (scenario, seed).
//! 2. **Stream independence** — adding a new component, or reordering draws
//!    in one component, never perturbs the random sequence seen by another,
//!    so A/B comparisons (e.g. DiversiFi on vs off over the *same* channel
//!    realisation) are paired experiments, not noise.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Derives independent child seeds from a master seed using SplitMix64, the
/// standard seed-sequencing construction (Steele et al., OOPSLA '14).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a label, mixing a stable string identity into seed space.
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A factory of independent, reproducible RNG streams.
#[derive(Clone, Debug)]
pub struct SeedFactory {
    master: u64,
}

impl SeedFactory {
    /// Create a factory for a given master seed.
    pub fn new(master: u64) -> Self {
        SeedFactory { master }
    }

    /// The master seed this factory was created with.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derive the stream for a component identified by (`label`, `index`).
    /// The same (master, label, index) always yields the same stream.
    pub fn stream(&self, label: &str, index: u64) -> RngStream {
        let mut s = self.master ^ fnv1a(label) ^ index.wrapping_mul(0xA24B_AED4_963E_E407);
        // Two rounds of splitmix to decorrelate structured inputs.
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        RngStream { rng: SmallRng::seed_from_u64(a ^ b.rotate_left(32)) }
    }

    /// A derived factory, for components that own sub-components (e.g. a
    /// scenario derives a factory per simulated call).
    pub fn subfactory(&self, label: &str, index: u64) -> SeedFactory {
        let mut s = self.master ^ fnv1a(label) ^ index.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        SeedFactory { master: splitmix64(&mut s) }
    }
}

/// A single deterministic random stream with the distributions the simulator
/// needs. Wraps `SmallRng` (xoshiro256++), which is fast and statistically
/// solid for simulation (not cryptographic — nothing here needs to be).
#[derive(Clone, Debug)]
pub struct RngStream {
    rng: SmallRng,
}

impl RngStream {
    /// A standalone stream from a raw seed (tests, micro-benchmarks).
    pub fn from_seed(seed: u64) -> Self {
        RngStream { rng: SmallRng::seed_from_u64(seed) }
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.rng.gen::<f64>() < p
        }
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range(lo..hi)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// Exponentially distributed value with the given mean (inverse-CDF
    /// method). Used for Markov-chain sojourn times and Poisson inter-arrivals.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // 1 - U avoids ln(0).
        -mean * (1.0 - self.rng.gen::<f64>()).ln()
    }

    /// Standard-normal draw via Box–Muller (single value; we deliberately do
    /// not cache the second value so stream consumption is call-count-stable).
    pub fn normal_std(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.rng.gen::<f64>();
        let u2: f64 = self.rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with mean `mu` and standard deviation `sigma`.
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        mu + sigma * self.normal_std()
    }

    /// Log-normal draw parameterised by the mean/sigma of the underlying
    /// normal. Used for heavy-tailed WAN jitter.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto draw with scale `xm > 0` and shape `alpha > 0` (heavy-tailed
    /// burst sizes).
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(xm > 0.0 && alpha > 0.0);
        xm / (1.0 - self.rng.gen::<f64>()).powf(1.0 / alpha)
    }

    /// Geometric number of failures before first success, `p` in `(0, 1]`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0);
        if p >= 1.0 {
            return 0;
        }
        let u: f64 = 1.0 - self.rng.gen::<f64>();
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Pick a reference to a uniformly random element. Panics on empty slice.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let f = SeedFactory::new(42);
        let mut a = f.stream("link", 0);
        let mut b = f.stream("link", 0);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_labels_different_streams() {
        let f = SeedFactory::new(42);
        let mut a = f.stream("link", 0);
        let mut b = f.stream("interference", 0);
        let same = (0..64).filter(|_| a.uniform().to_bits() == b.uniform().to_bits()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_indices_different_streams() {
        let f = SeedFactory::new(7);
        let mut a = f.stream("link", 0);
        let mut b = f.stream("link", 1);
        let same = (0..64).filter(|_| a.uniform().to_bits() == b.uniform().to_bits()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn subfactory_is_deterministic() {
        let f = SeedFactory::new(99);
        let mut a = f.subfactory("call", 3).stream("link", 0);
        let mut b = f.subfactory("call", 3).stream("link", 0);
        assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
    }

    #[test]
    fn chance_extremes() {
        let mut r = RngStream::from_seed(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = RngStream::from_seed(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exponential_mean_matches() {
        let mut r = RngStream::from_seed(3);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exponential(8.0)).sum::<f64>() / n as f64;
        assert!((mean - 8.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn normal_moments_match() {
        let mut r = RngStream::from_seed(4);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn geometric_mean_matches() {
        let mut r = RngStream::from_seed(5);
        let p = 0.25;
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.geometric(p) as f64).sum::<f64>() / n as f64;
        // E[failures before success] = (1-p)/p = 3.
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = RngStream::from_seed(6);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input unchanged");
    }

    #[test]
    fn pareto_is_bounded_below() {
        let mut r = RngStream::from_seed(7);
        for _ in 0..1000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }
}
