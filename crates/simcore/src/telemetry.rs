//! The thread-local telemetry collector: sessions, spans, merging.
//!
//! The component crates never thread a sink through their APIs. Instead,
//! the [`trace_event!`](crate::trace_event) macro (and metric recording
//! sites) check a two-level gate:
//!
//! 1. **Compile-time** — [`TRACE_COMPILED`] is `false` in release builds
//!    without the `trace` cargo feature, so the whole emission branch
//!    const-folds away: telemetry-off *is* the no-op path, not a cheap
//!    path. Debug builds always compile it in (like the audit layer), so
//!    the ordinary test suite exercises telemetry end to end.
//! 2. **Run-time** — a thread-local `active` flag set by [`begin`] /
//!    cleared by [`end`]. A sweep worker is one thread, so "per-worker
//!    sink" and "per-thread collector" are the same thing, and because
//!    each task runs begin→end on whichever thread claimed it, per-run
//!    event streams are identical no matter how tasks land on workers.
//!
//! # Determinism contract
//!
//! Telemetry observes, never participates: recording reads simulation
//! state but draws no randomness and schedules nothing, so results are
//! bit-identical with telemetry on or off (pinned by
//! `tests/telemetry_parity.rs` at 1/2/4/8 threads). The only wall-clock
//! reads live in [`Span`] self-profiling, whose measurements flow into
//! the [`TelemetrySession`] — never back into the simulation.

use std::cell::{Cell, RefCell};
use std::time::Instant;

use crate::metrics::MetricsRegistry;
use crate::time::SimTime;
use crate::trace::{RingSink, TraceEvent};

/// True when telemetry emission is compiled in: every debug build, and
/// release builds with `--features trace`. When false, all emission sites
/// const-fold to nothing.
pub const TRACE_COMPILED: bool = cfg!(any(debug_assertions, feature = "trace"));

/// Default per-run ring capacity used by the convenience entry points.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

struct Collector {
    ring: RingSink,
    profile: PhaseProfile,
    metrics: MetricsRegistry,
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static COLLECTOR: RefCell<Collector> = RefCell::new(Collector {
        ring: RingSink::new(0),
        profile: PhaseProfile::default(),
        metrics: MetricsRegistry::new(),
    });
}

/// Fast-path check: telemetry compiled in *and* a session is active on
/// this thread. Emission sites branch on this; when [`TRACE_COMPILED`] is
/// false the whole call folds to `false` at compile time.
#[inline(always)]
pub fn active() -> bool {
    TRACE_COMPILED && ACTIVE.with(|a| a.get())
}

/// Start a telemetry session on the current thread with a bounded event
/// ring of `capacity` (oldest events evicted, counted as dropped).
///
/// Replaces any session already active on this thread — the sweep entry
/// points (`SweepRunner::run_indexed_traced`) rely on begin/end pairs per
/// task, so don't nest sessions on one thread. No-op (and free) when
/// telemetry is compiled out.
pub fn begin(capacity: usize) {
    if !TRACE_COMPILED {
        return;
    }
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        c.ring.reset(capacity);
        c.profile = PhaseProfile::default();
        c.metrics.clear();
    });
    ACTIVE.with(|a| a.set(true));
}

/// End the current thread's session, returning everything it captured.
/// Returns an empty session when telemetry is compiled out or no session
/// was active.
pub fn end() -> TelemetrySession {
    if !TRACE_COMPILED {
        return TelemetrySession::default();
    }
    ACTIVE.with(|a| a.set(false));
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        let (first_seq, events) = c.ring.drain();
        TelemetrySession {
            events,
            first_seq,
            dropped: first_seq,
            profile: std::mem::take(&mut c.profile),
            metrics: std::mem::take(&mut c.metrics),
        }
    })
}

/// Record one event into the active session's ring. Callers should gate on
/// [`active`] (the [`trace_event!`](crate::trace_event) macro does).
#[inline]
pub fn record(event: TraceEvent) {
    if !TRACE_COMPILED {
        return;
    }
    COLLECTOR.with(|c| c.borrow_mut().ring.record(event));
}

/// Give a closure access to the active session's metrics snapshot. Does
/// nothing (closure not called) when no session is active — so components
/// can export unconditionally at end-of-run.
pub fn with_metrics<F: FnOnce(&mut MetricsRegistry)>(f: F) {
    if !active() {
        return;
    }
    COLLECTOR.with(|c| f(&mut c.borrow_mut().metrics));
}

/// Event-loop phases measured by the self-profiler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Popping and dispatching one event in `World::run`.
    Dispatch,
    /// Sampling the channel / running a MAC exchange.
    ChannelSample,
    /// Post-run metric reduction (trace → loss/delay/quantile pipeline).
    MetricsReduce,
}

/// Number of profiled phases.
pub const PHASES: usize = 3;

impl Phase {
    /// Stable lowercase name for tables and exports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Dispatch => "dispatch",
            Phase::ChannelSample => "channel_sample",
            Phase::MetricsReduce => "metrics_reduce",
        }
    }

    /// All phases, in index order.
    pub const ALL: [Phase; PHASES] = [Phase::Dispatch, Phase::ChannelSample, Phase::MetricsReduce];
}

/// Accumulated wall-clock time for one phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of spans closed.
    pub calls: u64,
    /// Total wall-clock nanoseconds across those spans.
    pub total_ns: u64,
}

/// Wall-clock self-profile of the event loop, one [`SpanStat`] per
/// [`Phase`]. Values are measurements *about* the simulator, not part of
/// it — they are nondeterministic and never feed back into results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    stats: [SpanStat; PHASES],
}

impl PhaseProfile {
    /// The accumulated stat for one phase.
    pub fn get(&self, phase: Phase) -> SpanStat {
        self.stats[phase as usize]
    }

    /// Add one measurement.
    #[inline]
    pub fn add(&mut self, phase: Phase, ns: u64) {
        let s = &mut self.stats[phase as usize];
        s.calls += 1;
        s.total_ns += ns;
    }

    /// Fold another profile in.
    pub fn merge(&mut self, other: &PhaseProfile) {
        for (a, b) in self.stats.iter_mut().zip(other.stats.iter()) {
            a.calls += b.calls;
            a.total_ns += b.total_ns;
        }
    }

    /// One-line human summary, e.g. for the metrics table footer.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for phase in Phase::ALL {
            let s = self.get(phase);
            if s.calls == 0 {
                continue;
            }
            if !out.is_empty() {
                out.push_str("  ");
            }
            let _ = write!(
                &mut out,
                "{}: {} spans, {:.3} ms",
                phase.name(),
                s.calls,
                s.total_ns as f64 / 1e6
            );
        }
        if out.is_empty() {
            out.push_str("(no spans recorded)");
        }
        out
    }
}

/// An RAII phase timer: measures wall-clock time from creation to drop
/// and folds it into the active session's [`PhaseProfile`]. Inert (no
/// clock read) when no session is active or telemetry is compiled out.
#[must_use = "a span measures the scope it lives in"]
pub struct Span {
    phase: Phase,
    start: Option<Instant>,
}

/// Open a span for `phase`. Two clock reads per span when a session is
/// active; nothing otherwise.
#[inline]
pub fn span(phase: Phase) -> Span {
    Span { phase, start: if active() { Some(Instant::now()) } else { None } }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            COLLECTOR.with(|c| c.borrow_mut().profile.add(self.phase, ns));
        }
    }
}

/// Everything one telemetry session captured: the surviving event suffix,
/// how much was evicted, the wall-clock profile, and the end-of-run
/// metrics snapshot.
#[derive(Debug, Default)]
pub struct TelemetrySession {
    /// Surviving events in emission order; event `i` has per-run sequence
    /// number `first_seq + i`.
    pub events: Vec<TraceEvent>,
    /// Per-run sequence number of `events[0]` (0 unless the ring evicted).
    pub first_seq: u64,
    /// Events evicted from the ring (== `first_seq`).
    pub dropped: u64,
    /// Wall-clock self-profile.
    pub profile: PhaseProfile,
    /// Metrics exported at end of run.
    pub metrics: MetricsRegistry,
}

impl TelemetrySession {
    /// True when nothing was captured (e.g. telemetry compiled out).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.dropped == 0 && self.metrics.is_empty()
    }
}

/// One event of a merged sweep trace, tagged with its run index and
/// per-run sequence number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepEvent {
    /// Index of the run (sweep task) that emitted the event.
    pub run: u32,
    /// Per-run emission sequence number.
    pub seq: u64,
    /// The event itself.
    pub event: TraceEvent,
}

/// The deterministic merge of every per-run [`TelemetrySession`] in a
/// sweep: events ordered by `(sim-time, run-index, seq)`, metrics folded
/// into one table, profiles summed.
#[derive(Debug, Default)]
pub struct MergedTelemetry {
    /// All surviving events across the sweep, `(at, run, seq)`-ordered
    /// once [`finish`](Self::finish) has run. Events pushed here directly
    /// (the field is public for exporter tests and ad-hoc assembly) are
    /// folded into the merge by the next `finish`.
    pub events: Vec<SweepEvent>,
    /// Total events evicted across all runs.
    pub dropped: u64,
    /// Aggregated metrics (counters summed, gauges averaged, histograms
    /// merged), in canonical row order.
    pub metrics: MetricsRegistry,
    /// Summed wall-clock profile across runs.
    pub profile: PhaseProfile,
    /// Absorbed per-run streams awaiting `finish`. Each is sorted by
    /// `(at, seq)` — checked on absorb — and carries a single run index,
    /// so it is equally sorted under the full `(at, run, seq)` merge key.
    pending: Vec<Vec<SweepEvent>>,
    /// Set when some absorbed stream violated `at`-monotonicity; `finish`
    /// then falls back to the full sort instead of the k-way merge.
    pending_unsorted: bool,
}

impl MergedTelemetry {
    /// Fold one run's session in. Call [`finish`](Self::finish) after the
    /// last run to establish the merge order.
    pub fn absorb(&mut self, run: u32, session: TelemetrySession) {
        let TelemetrySession { events, first_seq, dropped, profile, metrics } = session;
        // Per-run seq is increasing by construction, so the stream is
        // `(at, seq)`-sorted iff `at` never decreases. World runs emit at
        // the event loop's monotone `now`, so this is the common case;
        // a hand-built session that violates it just disables the k-way
        // fast path for this merge.
        let mut sorted = true;
        let mut stream = Vec::with_capacity(events.len());
        for (i, event) in events.into_iter().enumerate() {
            if let Some(prev) = stream.last() {
                let prev: &SweepEvent = prev;
                sorted &= prev.event.at <= event.at;
            }
            stream.push(SweepEvent { run, seq: first_seq + i as u64, event });
        }
        self.pending_unsorted |= !sorted;
        if !stream.is_empty() {
            self.pending.push(stream);
        }
        self.dropped += dropped;
        self.profile.merge(&profile);
        self.metrics.merge_from(&metrics);
    }

    /// Establish the merge order: events by `(sim-time, run, seq)`,
    /// metrics rows canonical. Idempotent; the resulting order is
    /// independent of worker count and of the order runs were absorbed
    /// in.
    ///
    /// Absorbed sessions are already sorted streams, so this is a
    /// loser-tree k-way merge ([`crate::merge`]) — O(N log k) instead of
    /// the O(N log N) concatenate-and-sort it replaces. Events pushed
    /// into [`events`](Self::events) by hand, or absorbed streams that
    /// were not time-sorted, fall back to the full sort with identical
    /// output (the merge key is total: no two events compare equal).
    pub fn finish(&mut self) {
        let key = |e: &SweepEvent| (e.event.at, e.run, e.seq);
        let mut streams = std::mem::take(&mut self.pending);
        let head = std::mem::take(&mut self.events);
        let fast = !self.pending_unsorted && crate::merge::is_sorted_by_key(&head, key);
        if !head.is_empty() {
            // The pre-existing contents participate as one more stream
            // (already sorted on the fast path, e.g. from a prior finish).
            streams.insert(0, head);
        }
        self.events = if fast {
            crate::merge::merge_sorted_by_key(streams, key)
        } else {
            let mut all: Vec<SweepEvent> = streams.into_iter().flatten().collect();
            all.sort_unstable_by_key(key);
            all
        };
        self.pending_unsorted = false;
        self.metrics.sort_rows();
    }

    /// Merge a single session as run 0 — lets one-off runs reuse the
    /// sweep exporters.
    pub fn from_single(session: TelemetrySession) -> MergedTelemetry {
        let mut merged = MergedTelemetry::default();
        merged.absorb(0, session);
        merged.finish();
        merged
    }

    /// Earliest event time, if any events survived. Exact after
    /// [`finish`](Self::finish); before it, the minimum over the merged
    /// prefix and every pending stream.
    pub fn first_time(&self) -> Option<SimTime> {
        self.events
            .iter()
            .map(|e| e.event.at)
            .chain(self.pending.iter().flatten().map(|e| e.event.at))
            .min()
    }
}

/// Emit one structured trace event into the active telemetry session.
///
/// The arguments after `$at` are only evaluated when telemetry is
/// compiled in *and* a session is active on this thread; in release
/// builds without the `trace` feature the whole statement const-folds
/// away.
///
/// ```
/// use diversifi_simcore::{trace_event, ComponentId, SimTime, TraceDetail, TraceKind};
/// # let (now, seq) = (SimTime::ZERO, 7u64);
/// trace_event!(now, TraceKind::Delivery, ComponentId::client(), TraceDetail::Seq(seq));
/// ```
#[macro_export]
macro_rules! trace_event {
    ($at:expr, $kind:expr, $who:expr, $detail:expr $(,)?) => {
        if $crate::telemetry::active() {
            $crate::telemetry::record($crate::TraceEvent {
                at: $at,
                kind: $kind,
                who: $who,
                detail: $detail,
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ComponentId, TraceDetail, TraceKind};

    fn ev(ms: u64, seq: u64) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_millis(ms),
            kind: TraceKind::Delivery,
            who: ComponentId::client(),
            detail: TraceDetail::Seq(seq),
        }
    }

    #[test]
    fn session_captures_events_and_metrics() {
        // Debug builds always compile telemetry in.
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(TRACE_COMPILED);
        }
        assert!(!active());
        begin(16);
        assert!(active());
        trace_event!(SimTime::from_millis(1), TraceKind::Enqueue, ComponentId::ap(0), TraceDetail::Seq(1));
        record(ev(2, 2));
        with_metrics(|m| m.counter(ComponentId::ap(0), "drops", 5));
        let session = end();
        assert!(!active());
        assert_eq!(session.events.len(), 2);
        assert_eq!(session.first_seq, 0);
        assert_eq!(session.dropped, 0);
        assert_eq!(session.metrics.len(), 1);
        // After end(), emission is inert again.
        record(ev(3, 3));
        with_metrics(|_| panic!("must not run without a session"));
        let empty = end();
        // The stray record landed in the (inactive) collector ring, which
        // the next begin() resets; end() without begin returns it drained.
        assert!(empty.metrics.is_empty());
    }

    #[test]
    fn macro_skips_evaluation_when_inactive() {
        assert!(!active());
        fn boom() -> TraceDetail {
            panic!("detail must not be evaluated while inactive")
        }
        trace_event!(SimTime::ZERO, TraceKind::Decision, ComponentId::client(), boom());
    }

    #[test]
    fn ring_eviction_sets_first_seq() {
        begin(4);
        for i in 0..10 {
            record(ev(i, i));
        }
        let s = end();
        assert_eq!(s.events.len(), 4);
        assert_eq!(s.first_seq, 6);
        assert_eq!(s.dropped, 6);
        assert_eq!(s.events[0].detail, TraceDetail::Seq(6));
    }

    #[test]
    fn spans_accumulate_only_when_active() {
        {
            let _g = span(Phase::Dispatch); // inactive: no clock read
        }
        begin(4);
        {
            let _g = span(Phase::Dispatch);
            let _h = span(Phase::MetricsReduce);
        }
        {
            let _g = span(Phase::Dispatch);
        }
        let s = end();
        assert_eq!(s.profile.get(Phase::Dispatch).calls, 2);
        assert_eq!(s.profile.get(Phase::MetricsReduce).calls, 1);
        assert_eq!(s.profile.get(Phase::ChannelSample).calls, 0);
        assert!(s.profile.summary().contains("dispatch: 2 spans"));
        let mut sum = PhaseProfile::default();
        sum.merge(&s.profile);
        sum.merge(&s.profile);
        assert_eq!(sum.get(Phase::Dispatch).calls, 4);
    }

    #[test]
    fn merged_telemetry_orders_by_time_run_seq() {
        let mut merged = MergedTelemetry::default();
        // Run 1: events at t=5 and t=1.
        let s1 = TelemetrySession {
            events: vec![ev(5, 50), ev(5, 51)],
            first_seq: 3,
            dropped: 3,
            ..TelemetrySession::default()
        };
        // Run 0: event at t=5 — same instant as run 1's, must sort first.
        let s0 = TelemetrySession { events: vec![ev(5, 40)], ..TelemetrySession::default() };
        merged.absorb(1, s1);
        merged.absorb(0, s0);
        merged.finish();
        let order: Vec<(u32, u64)> = merged.events.iter().map(|e| (e.run, e.seq)).collect();
        assert_eq!(order, vec![(0, 0), (1, 3), (1, 4)]);
        assert_eq!(merged.dropped, 3);
        assert_eq!(merged.first_time(), Some(SimTime::from_millis(5)));
    }

    #[test]
    fn merge_falls_back_on_unsorted_sessions_and_external_events() {
        // A hand-built session whose events go backwards in time must
        // still merge into the exact same total order as a full sort.
        let mut merged = MergedTelemetry::default();
        let unsorted =
            TelemetrySession { events: vec![ev(9, 0), ev(2, 1)], ..TelemetrySession::default() };
        merged.absorb(0, unsorted);
        merged.absorb(1, TelemetrySession { events: vec![ev(4, 0)], ..TelemetrySession::default() });
        // Plus an event pushed straight into the public field.
        merged.events.push(SweepEvent { run: 7, seq: 0, event: ev(3, 9) });
        merged.finish();
        let times: Vec<u64> =
            merged.events.iter().map(|e| e.event.at.as_micros() / 1_000).collect();
        assert_eq!(times, vec![2, 3, 4, 9]);
        // finish() is idempotent.
        merged.finish();
        let again: Vec<u64> =
            merged.events.iter().map(|e| e.event.at.as_micros() / 1_000).collect();
        assert_eq!(again, vec![2, 3, 4, 9]);
    }

    #[test]
    fn kway_merge_matches_sort_over_many_runs() {
        // Differential: absorb many sorted runs, compare against the
        // naive concatenate-and-sort on the same data.
        let mut merged = MergedTelemetry::default();
        let mut naive: Vec<(SimTime, u32, u64)> = Vec::new();
        for run in 0..13u32 {
            let events: Vec<TraceEvent> =
                (0..17).map(|i| ev(u64::from((i * (run + 3)) % 29), u64::from(i))).collect();
            let mut sorted = events.clone();
            sorted.sort_by_key(|e| e.at);
            for (i, e) in sorted.iter().enumerate() {
                naive.push((e.at, run, i as u64));
            }
            merged
                .absorb(run, TelemetrySession { events: sorted, ..TelemetrySession::default() });
        }
        merged.finish();
        naive.sort_unstable();
        let got: Vec<(SimTime, u32, u64)> =
            merged.events.iter().map(|e| (e.event.at, e.run, e.seq)).collect();
        assert_eq!(got, naive);
    }
}
