//! Deterministic fault plans: a seed-stable schedule of heterogeneous
//! faults injected into a simulation run.
//!
//! A [`FaultPlan`] is pure data — an ordered list of [`FaultSpec`]s, each a
//! start instant plus a [`FaultKind`]. The plan carries **no randomness of
//! its own**: every onset, duration and intensity is spelled out by the
//! caller, so a run remains a pure function of `(config, seed)` and two
//! runs with the same plan are bit-identical whatever the thread count or
//! telemetry/audit configuration (DESIGN.md §9).
//!
//! The world consumes a plan through [`FaultPlan::windows`], which expands
//! compound faults (e.g. a crash/flap pattern) into a flat, canonically
//! ordered list of [`FaultWindow`]s — one contiguous interval of one
//! [`FaultEffect`] each. The expansion is deterministic and allocation is
//! one-shot at run start, so the hot path never touches the plan.
//!
//! Recovery bookkeeping uses [`FaultOutcome`]: the world records, per
//! window, when service was first restored after the impairment cleared,
//! from which MTTR (mean time to recovery, measured from fault *onset*) is
//! derived for the metrics registry and the `repro --resilience` report.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One category of injectable fault.
///
/// Durations are *wall-clock sim time*; probabilities are per-event in
/// `[0, 1]`. All effects are modelled inside the world's existing named
/// RNG streams — the fault layer itself never draws.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Power-cycle one AP: associations torn down, every buffered frame
    /// destroyed, AP silent for `outage`, then stations re-associate.
    ApPowerCycle {
        /// Which AP (0 = primary, 1 = secondary).
        ap: usize,
        /// How long the AP stays down.
        outage: SimDuration,
    },
    /// A crash/flap pattern: `cycles` repetitions of (`down` outage, `up`
    /// healthy gap), starting at the spec's `at`.
    ApFlap {
        /// Which AP (0 = primary, 1 = secondary).
        ap: usize,
        /// Outage length of each cycle.
        down: SimDuration,
        /// Healthy gap between consecutive outages.
        up: SimDuration,
        /// Number of down/up repetitions.
        cycles: u32,
    },
    /// The middlebox process restarts: the replication buffer is wiped,
    /// and after the process is back (`outage`) the SDN replication rule
    /// takes a further `reinstall_delay` to be re-installed — copies
    /// arriving in between are discarded at the door.
    MiddleboxRestart {
        /// Process downtime.
        outage: SimDuration,
        /// Extra delay before the SDN replication rule is back.
        reinstall_delay: SimDuration,
    },
    /// A WAN/LAN brownout: every LAN-bound packet picks up `extra_delay`,
    /// and uplink control messages see an *additional* independent loss
    /// probability of `control_loss` for the duration.
    Brownout {
        /// Window length.
        duration: SimDuration,
        /// Added one-way latency on LAN legs.
        extra_delay: SimDuration,
        /// Extra per-message control-plane loss probability.
        control_loss: f64,
    },
    /// Total uplink control-plane outage: every control message (PS-Poll
    /// nulls, middlebox start/stop, TCP acks) is lost for the duration.
    UplinkOutage {
        /// Window length.
        duration: SimDuration,
    },
    /// An interference storm layered on the Gilbert–Elliott channel: an
    /// extra per-attempt erasure probability composed multiplicatively
    /// with the link's own PHY/fading/interference terms.
    InterferenceStorm {
        /// Window length.
        duration: SimDuration,
        /// Additional per-attempt erasure probability in `[0, 1]`.
        erasure: f64,
        /// Affected downlink (0 = primary, 1 = secondary); `None` hits
        /// every link.
        link: Option<usize>,
    },
}

impl FaultKind {
    /// Stable label for metrics rows and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::ApPowerCycle { .. } => "ap_power_cycle",
            FaultKind::ApFlap { .. } => "ap_flap",
            FaultKind::MiddleboxRestart { .. } => "middlebox_restart",
            FaultKind::Brownout { .. } => "brownout",
            FaultKind::UplinkOutage { .. } => "uplink_outage",
            FaultKind::InterferenceStorm { .. } => "interference_storm",
        }
    }
}

/// One scheduled fault: a start instant plus what goes wrong.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// When the fault begins.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults for one run.
///
/// The default plan is empty (a healthy run). Plans compare equal iff
/// their specs are identical, which is what the legacy-encoding
/// regression test in `tests/failure_injection.rs` relies on.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled faults, in caller order.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The empty (healthy) plan.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan from an explicit spec list.
    pub fn new(specs: Vec<FaultSpec>) -> FaultPlan {
        FaultPlan { specs }
    }

    /// Back-compat constructor: the legacy `WorldConfig.reboot` shape — a
    /// single AP power cycle at `at` lasting `outage`.
    pub fn single_ap_reboot(ap: usize, at: SimTime, outage: SimDuration) -> FaultPlan {
        FaultPlan::new(vec![FaultSpec { at, kind: FaultKind::ApPowerCycle { ap, outage } }])
    }

    /// Append one more fault (builder style).
    pub fn with(mut self, at: SimTime, kind: FaultKind) -> FaultPlan {
        self.specs.push(FaultSpec { at, kind });
        self
    }

    /// Is this the healthy plan?
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Expand the plan into flat per-effect windows, canonically ordered
    /// by `(start, end, fault index)`. Compound faults (flaps) become one
    /// window per cycle; zero-cycle flaps expand to nothing.
    pub fn windows(&self) -> Vec<FaultWindow> {
        let mut out = Vec::new();
        for (idx, spec) in self.specs.iter().enumerate() {
            match spec.kind {
                FaultKind::ApPowerCycle { ap, outage } => out.push(FaultWindow {
                    fault: idx,
                    start: spec.at,
                    end: spec.at + outage,
                    effect: FaultEffect::ApDown { ap },
                }),
                FaultKind::ApFlap { ap, down, up, cycles } => {
                    let mut start = spec.at;
                    for _ in 0..cycles {
                        out.push(FaultWindow {
                            fault: idx,
                            start,
                            end: start + down,
                            effect: FaultEffect::ApDown { ap },
                        });
                        start = start + down + up;
                    }
                }
                FaultKind::MiddleboxRestart { outage, reinstall_delay } => out.push(FaultWindow {
                    fault: idx,
                    start: spec.at,
                    end: spec.at + outage,
                    effect: FaultEffect::MiddleboxDown { reinstall_delay },
                }),
                FaultKind::Brownout { duration, extra_delay, control_loss } => {
                    out.push(FaultWindow {
                        fault: idx,
                        start: spec.at,
                        end: spec.at + duration,
                        effect: FaultEffect::Brownout { extra_delay, control_loss },
                    })
                }
                FaultKind::UplinkOutage { duration } => out.push(FaultWindow {
                    fault: idx,
                    start: spec.at,
                    end: spec.at + duration,
                    effect: FaultEffect::UplinkDown,
                }),
                FaultKind::InterferenceStorm { duration, erasure, link } => {
                    out.push(FaultWindow {
                        fault: idx,
                        start: spec.at,
                        end: spec.at + duration,
                        effect: FaultEffect::Storm { erasure, link },
                    })
                }
            }
        }
        out.sort_by_key(|w| (w.start, w.end, w.fault));
        out
    }
}

/// The runtime effect active during one [`FaultWindow`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultEffect {
    /// The AP is powered off.
    ApDown {
        /// Which AP.
        ap: usize,
    },
    /// The middlebox process is down; after the window ends the
    /// replication rule needs `reinstall_delay` more to come back.
    MiddleboxDown {
        /// SDN rule re-install latency after process restart.
        reinstall_delay: SimDuration,
    },
    /// LAN latency spike + control-plane loss burst.
    Brownout {
        /// Added one-way LAN latency.
        extra_delay: SimDuration,
        /// Extra control-message loss probability.
        control_loss: f64,
    },
    /// Uplink control plane fully out.
    UplinkDown,
    /// Extra per-attempt erasure on the affected link(s).
    Storm {
        /// Additional erasure probability.
        erasure: f64,
        /// Affected link, or all when `None`.
        link: Option<usize>,
    },
}

/// One contiguous impairment interval produced by [`FaultPlan::windows`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// Index of the originating [`FaultSpec`] in the plan.
    pub fault: usize,
    /// Impairment onset.
    pub start: SimTime,
    /// When the impairment itself clears (exclusive). For middlebox
    /// restarts the replication rule returns `reinstall_delay` later.
    pub end: SimTime,
    /// What is impaired.
    pub effect: FaultEffect,
}

impl FaultWindow {
    /// Stable label for metrics rows and reports.
    pub fn label(&self) -> &'static str {
        match self.effect {
            FaultEffect::ApDown { .. } => "ap_down",
            FaultEffect::MiddleboxDown { .. } => "middlebox_restart",
            FaultEffect::Brownout { .. } => "brownout",
            FaultEffect::UplinkDown => "uplink_outage",
            FaultEffect::Storm { .. } => "interference_storm",
        }
    }

    /// Does `t` fall inside the impairment interval `[start, end)`?
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// Per-window recovery record assembled by the world at end of run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultOutcome {
    /// Index of the originating [`FaultSpec`].
    pub fault: usize,
    /// Window label (see [`FaultWindow::label`]).
    pub label: &'static str,
    /// Impairment onset.
    pub start: SimTime,
    /// When the impairment cleared.
    pub end: SimTime,
    /// First stream delivery heard by the client at or after the
    /// impairment fully cleared — `None` if service never came back
    /// before end of run.
    pub recovered_at: Option<SimTime>,
}

impl FaultOutcome {
    /// Scheduled outage duration (`end - start`).
    pub fn outage(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }

    /// Time to recovery measured from fault onset, when recovered.
    pub fn mttr(&self) -> Option<SimDuration> {
        self.recovered_at.map(|r| r.saturating_since(self.start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime::ZERO;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn empty_plan_has_no_windows() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::none().windows().is_empty());
    }

    #[test]
    fn legacy_reboot_expands_to_one_ap_down_window() {
        let plan = FaultPlan::single_ap_reboot(1, T0 + secs(10), secs(3));
        let w = plan.windows();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].effect, FaultEffect::ApDown { ap: 1 });
        assert_eq!(w[0].start, T0 + secs(10));
        assert_eq!(w[0].end, T0 + secs(13));
        assert_eq!(w[0].label(), "ap_down");
    }

    #[test]
    fn flap_expands_to_one_window_per_cycle() {
        let plan = FaultPlan::none().with(
            T0 + secs(5),
            FaultKind::ApFlap { ap: 0, down: secs(1), up: secs(2), cycles: 3 },
        );
        let w = plan.windows();
        assert_eq!(w.len(), 3);
        for (i, win) in w.iter().enumerate() {
            let start = T0 + secs(5 + 3 * i as u64);
            assert_eq!(win.start, start);
            assert_eq!(win.end, start + secs(1));
            assert_eq!(win.fault, 0);
        }
    }

    #[test]
    fn windows_are_sorted_by_start_not_spec_order() {
        let plan = FaultPlan::none()
            .with(T0 + secs(20), FaultKind::UplinkOutage { duration: secs(1) })
            .with(
                T0 + secs(5),
                FaultKind::Brownout {
                    duration: secs(2),
                    extra_delay: SimDuration::from_millis(30),
                    control_loss: 0.5,
                },
            );
        let w = plan.windows();
        assert_eq!(w.len(), 2);
        assert!(w[0].start < w[1].start);
        assert_eq!(w[0].fault, 1, "brownout was declared second but starts first");
    }

    #[test]
    fn zero_cycle_flap_expands_to_nothing() {
        let plan = FaultPlan::none().with(
            T0,
            FaultKind::ApFlap { ap: 1, down: secs(1), up: secs(1), cycles: 0 },
        );
        assert!(plan.windows().is_empty());
    }

    #[test]
    fn outcome_mttr_is_measured_from_onset() {
        let o = FaultOutcome {
            fault: 0,
            label: "ap_down",
            start: T0 + secs(10),
            end: T0 + secs(13),
            recovered_at: Some(T0 + secs(14)),
        };
        assert_eq!(o.outage(), secs(3));
        assert_eq!(o.mttr(), Some(secs(4)));
        let unrecovered = FaultOutcome { recovered_at: None, ..o };
        assert_eq!(unrecovered.mttr(), None);
    }

    #[test]
    fn window_containment_is_half_open() {
        let plan = FaultPlan::single_ap_reboot(0, T0 + secs(1), secs(2));
        let w = plan.windows()[0];
        assert!(!w.contains(T0));
        assert!(w.contains(T0 + secs(1)));
        assert!(w.contains(T0 + secs(2)));
        assert!(!w.contains(T0 + secs(3)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Decode one raw draw into a spec. Durations are ≥ 1 ms by
    /// construction, so every expanded window has positive length; the
    /// kind selector covers the full catalogue, and flap cycle counts
    /// include 0 (which must expand to nothing).
    fn decode_spec(at_ms: u64, kind_sel: usize, params: (u64, u64, u64)) -> FaultSpec {
        let (d1, d2, n) = params;
        let dur1 = SimDuration::from_millis(d1);
        let dur2 = SimDuration::from_millis(d2);
        let kind = match kind_sel {
            0 => FaultKind::ApPowerCycle { ap: (n % 2) as usize, outage: dur1 },
            1 => FaultKind::ApFlap {
                ap: (n % 2) as usize,
                down: dur1,
                up: dur2,
                cycles: n as u32,
            },
            2 => FaultKind::MiddleboxRestart { outage: dur1, reinstall_delay: dur2 },
            3 => FaultKind::Brownout {
                duration: dur1,
                extra_delay: SimDuration::from_millis(d2 % 50),
                control_loss: n as f64 / 6.0,
            },
            4 => FaultKind::UplinkOutage { duration: dur1 },
            _ => FaultKind::InterferenceStorm {
                duration: dur1,
                erasure: n as f64 / 6.0,
                link: match n % 3 {
                    0 => None,
                    1 => Some(0),
                    _ => Some(1),
                },
            },
        };
        FaultSpec { at: SimTime::from_millis(at_ms), kind }
    }

    proptest! {
        /// `FaultPlan::windows()` invariants for arbitrary generated
        /// specs: canonical `(start, end, fault)` order, no zero-length
        /// windows, and an exact expansion count (one window per plain
        /// spec, `cycles` windows per flap — including zero).
        #[test]
        fn windows_expansion_invariants(
            raw in proptest::collection::vec(
                (0u64..60_000, 0usize..6, (1u64..4_000, 1u64..3_000, 0u64..6)),
                0..12,
            )
        ) {
            let specs: Vec<FaultSpec> =
                raw.iter().map(|&(at, k, p)| decode_spec(at, k, p)).collect();
            let plan = FaultPlan::new(specs.clone());
            let ws = plan.windows();

            // Canonical sort order.
            for w in ws.windows(2) {
                prop_assert!(
                    (w[0].start, w[0].end, w[0].fault) <= (w[1].start, w[1].end, w[1].fault)
                );
            }
            // No zero-length windows (durations are positive by construction).
            for w in &ws {
                prop_assert!(w.start < w.end, "zero-length window {w:?}");
            }
            // Exact expansion count.
            let expect: usize = specs
                .iter()
                .map(|s| match s.kind {
                    FaultKind::ApFlap { cycles, .. } => cycles as usize,
                    _ => 1,
                })
                .sum();
            prop_assert_eq!(ws.len(), expect);
            // Provenance: every window points at a real spec and never
            // starts before its spec's onset.
            for w in &ws {
                prop_assert!(w.fault < specs.len());
                prop_assert!(w.start >= specs[w.fault].at);
            }
        }

        /// Flap cycle starts step by exactly `down + up`, and each
        /// window's length is exactly `down`.
        #[test]
        fn flap_cycle_timing_is_exact(
            at in 0u64..10_000,
            down in 1u64..2_000,
            up in 1u64..2_000,
            cycles in 0u32..8,
        ) {
            let plan = FaultPlan::none().with(
                SimTime::from_millis(at),
                FaultKind::ApFlap {
                    ap: 0,
                    down: SimDuration::from_millis(down),
                    up: SimDuration::from_millis(up),
                    cycles,
                },
            );
            let ws = plan.windows();
            prop_assert_eq!(ws.len(), cycles as usize);
            for (i, w) in ws.iter().enumerate() {
                let start = SimTime::from_millis(at + (down + up) * i as u64);
                prop_assert_eq!(w.start, start);
                prop_assert_eq!(w.end, start + SimDuration::from_millis(down));
            }
        }
    }
}
