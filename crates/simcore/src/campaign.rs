//! Sharded million-call campaign engine with checkpoint/resume.
//!
//! A *campaign* folds `n_calls` independent, seeded calls into one
//! [`ShardDigest`](crate::digest::ShardDigest). The call range is cut into
//! contiguous shards; shards run in parallel on a [`SweepRunner`], each one
//! folded serially in index order into its own digest, and the per-shard
//! digests merge in shard order — so the campaign digest is a pure
//! function of `(fold, n_calls, shard_size)` at **any** thread count, and
//! peak memory is one digest plus one [`MetricsScratch`] per worker,
//! independent of `n_calls`.
//!
//! # Checkpoint/resume
//!
//! With a checkpoint directory configured, every completed shard writes
//! `shard-NNNNNN.json` (atomically: temp file + rename) carrying the
//! campaign id, the shard's call range and its serialised digest. A later
//! run with the same configuration loads the completed shards, re-runs
//! only the missing ones, and — because digest serialisation round-trips
//! floats exactly and the merge order is fixed — produces a campaign
//! digest **bit-identical** to an uninterrupted run. A checkpoint whose
//! campaign id, schema layout or call range disagrees, or that fails to
//! parse (e.g. a file truncated by a kill), is discarded and its shard
//! re-run; resume never degrades to a silently different result.
//!
//! # Flight recorder and heartbeat
//!
//! [`run_campaign_observed`] extends the fold with a per-shard
//! [`WorstK`] flight selector (merged in shard index order, serialised
//! into shard checkpoints bit-exactly — see [`crate::flight`]) and a
//! per-shard [`HeartbeatSample`] callback carrying wall-clock health
//! counters. The selector reads only the scores the fold already
//! computes and the heartbeat only reads the clock, so digests — and
//! their fingerprints — are bit-identical with the recorder on or off.
//! `flight_k` participates in the campaign id: checkpoints written with
//! a different retention can never silently resume into this run.
//!
//! The engine itself never prints; callers observe progress through the
//! [`progress`](CampaignConfig::run) callback (the `repro --campaign`
//! front-end turns it into a calls/sec ticker) and health through the
//! heartbeat callback.
//!
//! # Supervision: quarantine, watchdog, IO retry
//!
//! The engine is a *supervisor*, not just a scheduler — a single bad
//! shard must never take down a million-call campaign:
//!
//! - **Panic isolation.** Every fresh shard fold runs under
//!   `catch_unwind`. A panicking shard (an invariant-audit trip, a model
//!   bug on one pathological call) is **quarantined**: its index and
//!   panic message land in [`CampaignOutcome::quarantined`], the campaign
//!   keeps running every other shard (and checkpointing them, so a later
//!   run after the fix only re-executes the poisoned shard), and
//!   completes *degraded* — `complete == false`, no digest offered, the
//!   quarantine list tells the caller exactly what to report. Panics are
//!   deterministic (a fold is a pure function of its call index), so
//!   quarantine decisions are too.
//! - **Shard watchdog.** [`CampaignConfig::watchdog_ns`] flags shards
//!   whose fold exceeded the threshold into
//!   [`CampaignOutcome::slow_shards`]. The watchdog *observes wall time
//!   but never decides results* — it cannot abort or reorder a fold, so
//!   digests remain bit-identical at every thread count; deterministic
//!   failures (panics) are the only thing that changes an outcome.
//! - **IO retry with backoff.** Checkpoint reads and writes retry
//!   transient errors ([`CampaignConfig::io_retries`] attempts with
//!   linear backoff) before giving up. A write that still fails is
//!   counted in [`CampaignOutcome::checkpoint_errors`] and the campaign
//!   continues — the shard result is correct, a later run simply
//!   re-executes it; a read that still fails re-runs the shard. A full
//!   disk degrades a campaign, it does not panic it.
//!
//! None of the supervision knobs participates in
//! [`CampaignConfig::campaign_id`]: they change how faults are *handled*,
//! never what a fold computes, so checkpoints remain interchangeable and
//! supervision-off runs stay byte-identical.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize, Value};

use crate::digest::{DigestSchema, ShardDigest};
use crate::flight::WorstK;
use crate::metrics::LogHistogram;
use crate::scratch::MetricsScratch;
use crate::par::SweepRunner;

/// How often (in calls) workers publish progress between shard
/// boundaries. Purely a reporting cadence — small enough for a live
/// calls/sec ticker, large enough that the atomic add never shows up in
/// profiles.
const PROGRESS_CHUNK: u64 = 4096;

/// Configuration of one campaign run.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Total calls to fold.
    pub n_calls: u64,
    /// Calls per shard (the checkpoint granularity). The last shard may be
    /// short.
    pub shard_size: u64,
    /// Worker threads; `0` means [`SweepRunner::available`].
    pub threads: usize,
    /// Where to write/load per-shard checkpoints; `None` disables
    /// checkpointing entirely.
    pub checkpoint_dir: Option<PathBuf>,
    /// Caller-supplied fingerprint of everything that determines the fold
    /// (scenario, seed, …). Folded together with the digest schema and the
    /// shard plan into the id that guards checkpoints.
    pub config_fingerprint: u64,
    /// Stop after this many *newly executed* shards (resumed shards don't
    /// count), leaving a partial checkpoint directory behind. `None` runs
    /// to completion. This is how tests — and budget-limited runs —
    /// simulate a mid-campaign kill deterministically.
    pub max_new_shards: Option<usize>,
    /// Flight-recorder retention: keep the K worst calls' keys for
    /// post-campaign forensic capture. `0` disables the recorder (the
    /// selector is never touched). Part of the campaign id, so
    /// recorder-on and recorder-off checkpoints never mix.
    pub flight_k: usize,
    /// Watchdog threshold: a freshly executed shard whose fold wall time
    /// exceeds this many nanoseconds is listed in
    /// [`CampaignOutcome::slow_shards`]. Purely observational — never
    /// aborts a fold or perturbs results. `None` disables it. Not part of
    /// the campaign id.
    pub watchdog_ns: Option<u64>,
    /// Extra attempts after a failed checkpoint read/write before giving
    /// up (linear backoff between attempts). Not part of the campaign id.
    pub io_retries: u32,
}

impl CampaignConfig {
    /// A campaign over `n_calls` with the default shard size (8192 calls),
    /// auto threads, no checkpointing, recorder off.
    pub fn new(n_calls: u64) -> CampaignConfig {
        CampaignConfig {
            n_calls,
            shard_size: 8192,
            threads: 0,
            checkpoint_dir: None,
            config_fingerprint: 0,
            max_new_shards: None,
            flight_k: 0,
            watchdog_ns: None,
            io_retries: 2,
        }
    }

    /// Number of shards in the plan.
    pub fn shards(&self) -> usize {
        assert!(self.shard_size > 0, "shard_size must be positive");
        (self.n_calls.div_ceil(self.shard_size)) as usize
    }

    /// Call range `[first, first + len)` of shard `s`.
    pub fn shard_range(&self, s: usize) -> (u64, u64) {
        let first = s as u64 * self.shard_size;
        let len = self.shard_size.min(self.n_calls - first);
        (first, len)
    }

    /// The id stamped into (and demanded of) every checkpoint: the
    /// caller's config fingerprint folded with the schema layout, the
    /// shard plan, and the flight retention, so a checkpoint from any
    /// other campaign shape can never be resumed into this one.
    pub fn campaign_id(&self, schema: &DigestSchema) -> u64 {
        let mut id = 0xcbf29ce484222325u64;
        for v in [
            self.config_fingerprint,
            schema.fingerprint(),
            self.n_calls,
            self.shard_size,
            self.flight_k as u64,
        ] {
            for b in v.to_le_bytes() {
                id ^= b as u64;
                id = id.wrapping_mul(0x100000001b3);
            }
        }
        id
    }

    /// Run the campaign. See [`run_campaign`].
    pub fn run<F, P>(
        &self,
        schema: &DigestSchema,
        per_call: F,
        progress: P,
    ) -> std::io::Result<CampaignOutcome>
    where
        F: Fn(u64, &mut MetricsScratch, &mut ShardDigest) + Sync,
        P: Fn(&CampaignProgress) + Sync,
    {
        run_campaign(self, schema, per_call, progress)
    }
}

/// A progress snapshot, published on shard completion and every
/// [`PROGRESS_CHUNK`] calls in between.
#[derive(Clone, Copy, Debug)]
pub struct CampaignProgress {
    /// Calls folded so far (monotone, across all workers).
    pub calls_done: u64,
    /// Total calls the campaign will fold (excluding resumed shards).
    pub calls_planned: u64,
    /// Shards finished so far (run or resumed).
    pub shards_done: usize,
    /// Total shards in the plan.
    pub shards_total: usize,
    /// Of the finished shards, how many were loaded from checkpoints.
    pub shards_resumed: usize,
}

/// One heartbeat: per-shard health counters published the moment a
/// freshly executed shard finishes. Everything here is wall-clock
/// *observation* — nondeterministic by nature, never folded back into
/// results. Publication order across workers is scheduling-dependent;
/// consumers that need determinism should read [`CampaignHealth`]
/// (folded in shard index order) instead.
#[derive(Clone, Copy, Debug)]
pub struct HeartbeatSample {
    /// Index of the shard that just finished.
    pub shard: usize,
    /// Calls the shard folded.
    pub calls: u64,
    /// Wall-clock nanoseconds the shard's fold took.
    pub shard_wall_ns: u64,
    /// Wall-clock nanoseconds its checkpoint write took (0 when
    /// checkpointing is off).
    pub checkpoint_write_ns: u64,
    /// Shards finished so far (run or resumed).
    pub shards_done: usize,
    /// Total shards in the plan.
    pub shards_total: usize,
    /// Calls folded so far across all workers.
    pub calls_done: u64,
    /// Wall-clock nanoseconds since the campaign started.
    pub elapsed_ns: u64,
}

/// Aggregated campaign health: the heartbeat stream folded into
/// histograms plus end-to-end totals. Wall-clock observations about the
/// engine — they never feed back into digests or selection.
#[derive(Clone, Debug, Default)]
pub struct CampaignHealth {
    /// Per-shard fold wall time (µs), freshly executed shards only.
    pub shard_wall_us: LogHistogram,
    /// Per-shard checkpoint write wall time (µs), when checkpointing.
    pub checkpoint_write_us: LogHistogram,
    /// Total wall time spent merging shard digests (ns).
    pub merge_ns: u64,
    /// End-to-end campaign wall time (ns).
    pub elapsed_ns: u64,
    /// Calls freshly folded by this run (resumed shards excluded).
    pub calls_folded: u64,
}

impl CampaignHealth {
    /// Fresh calls per second over the whole run (0 when nothing ran or
    /// the clock read 0).
    pub fn calls_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.calls_folded as f64 * 1e9 / self.elapsed_ns as f64
        }
    }
}

/// One quarantined shard: a fold that panicked and was isolated instead
/// of killing the campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardQuarantine {
    /// The shard index.
    pub shard: usize,
    /// The panic payload (stringified), e.g. an invariant-audit message.
    pub reason: String,
}

/// What a campaign run produced.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// The merged digest over `[0, n_calls)` — `None` when the run was
    /// truncated by `max_new_shards` or degraded by quarantine (a partial
    /// merge would silently drop shards, so none is offered).
    pub digest: Option<ShardDigest>,
    /// Fingerprint of the merged digest (see
    /// [`ShardDigest::fingerprint`]); `None` when incomplete.
    pub fingerprint: Option<u64>,
    /// The merged flight selector — `Some` exactly when the campaign
    /// completed with `flight_k > 0`.
    pub flight: Option<WorstK>,
    /// Aggregated health counters for this run.
    pub health: CampaignHealth,
    /// Shards in the plan.
    pub shards_total: usize,
    /// Shards executed by this run.
    pub shards_run: usize,
    /// Shards loaded from checkpoints.
    pub shards_resumed: usize,
    /// True when every shard is accounted for.
    pub complete: bool,
    /// Shards whose fold panicked, isolated and skipped (sorted by shard
    /// index). Non-empty implies `complete == false`; every *other* shard
    /// still ran and checkpointed.
    pub quarantined: Vec<ShardQuarantine>,
    /// Checkpoint writes that still failed after retries. The affected
    /// shards' results are correct and merged; they simply re-run on
    /// resume.
    pub checkpoint_errors: usize,
    /// Freshly executed shards whose fold wall time exceeded
    /// [`CampaignConfig::watchdog_ns`] (sorted). Observational only.
    pub slow_shards: Vec<usize>,
}

fn shard_path(dir: &Path, s: usize) -> PathBuf {
    dir.join(format!("shard-{s:06}.json"))
}

/// Run `op` up to `1 + retries` times with linear backoff, returning the
/// first success or the final error. `NotFound` never retries — an absent
/// checkpoint is a state, not a transient fault.
fn with_io_retry<T>(
    retries: u32,
    mut op: impl FnMut() -> std::io::Result<T>,
) -> std::io::Result<T> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if attempt < retries && e.kind() != std::io::ErrorKind::NotFound => {
                attempt += 1;
                std::thread::sleep(Duration::from_millis(10 * u64::from(attempt)));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Load one shard checkpoint, returning `None` (shard will re-run) on any
/// mismatch or corruption. Transient read errors retry with backoff;
/// parse and validation failures are permanent. When the campaign records
/// flight data the checkpoint must carry a valid selector of the same
/// `k` — a digest without its selector would silently drop worst calls on
/// resume.
fn load_shard(
    dir: &Path,
    s: usize,
    id: u64,
    schema: &DigestSchema,
    want: (u64, u64),
    flight_k: usize,
    retries: u32,
) -> Option<(ShardDigest, WorstK)> {
    let text = with_io_retry(retries, || std::fs::read_to_string(shard_path(dir, s))).ok()?;
    let v: Value = serde_json::from_str(&text).ok()?;
    let file_id = v.get("campaign_id").and_then(Value::as_u64)?;
    if file_id != id {
        return None;
    }
    let d = ShardDigest::from_value_checked(schema, v.get("digest")?).ok()?;
    if (d.first(), d.len()) != want {
        return None;
    }
    let worst = if flight_k == 0 {
        WorstK::new(0)
    } else {
        let w = WorstK::from_value(v.get("flight")?).ok()?;
        if w.k() != flight_k {
            return None;
        }
        w
    };
    Some((d, worst))
}

/// Write one shard checkpoint atomically (temp file in the same directory,
/// then rename), so a kill mid-write leaves either the old state or a
/// `.tmp` orphan — never a half-written checkpoint under the final name.
/// Transient write/rename errors retry with backoff.
fn store_shard(
    dir: &Path,
    s: usize,
    id: u64,
    schema: &DigestSchema,
    digest: &ShardDigest,
    worst: Option<&WorstK>,
    retries: u32,
) -> std::io::Result<()> {
    let mut fields = vec![
        ("campaign_id".to_string(), Value::U64(id)),
        ("shard".to_string(), Value::U64(s as u64)),
        ("digest".to_string(), digest.to_value(schema)),
    ];
    if let Some(w) = worst {
        fields.push(("flight".to_string(), w.to_value()));
    }
    let text = serde_json::to_string(&Value::Object(fields))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let tmp = dir.join(format!("shard-{s:06}.json.tmp"));
    with_io_retry(retries, || {
        std::fs::write(&tmp, &text)?;
        std::fs::rename(&tmp, shard_path(dir, s))
    })
}

/// Stringify a `catch_unwind` payload for the quarantine report.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Execute a sharded campaign: resume what the checkpoint directory
/// already holds, run the remaining shards on a [`SweepRunner`], and merge
/// everything in shard order.
///
/// `per_call(i, scratch, digest)` must be a pure function of `i` given the
/// campaign configuration — the same contract as every other sweep, and
/// what makes resumption bit-exact. The scratch is the usual per-worker
/// metrics buffer bundle; the digest is the shard's accumulator.
///
/// Memory is **independent of the campaign size**: shards are produced in
/// index-ordered batches of a few per worker and merged into a single
/// running digest as each batch completes, so at most one batch of shard
/// digests is ever live — a 100k-call and a 100M-call campaign peak at the
/// same RSS. The merge consumes shards strictly in index order, which is
/// what keeps fingerprints bit-identical across thread counts and
/// resume/uninterrupted runs.
///
/// This entry point ignores `flight_k` (the fold never sees a selector);
/// use [`run_campaign_observed`] for the flight recorder and heartbeat.
pub fn run_campaign<F, P>(
    cfg: &CampaignConfig,
    schema: &DigestSchema,
    per_call: F,
    progress: P,
) -> std::io::Result<CampaignOutcome>
where
    F: Fn(u64, &mut MetricsScratch, &mut ShardDigest) + Sync,
    P: Fn(&CampaignProgress) + Sync,
{
    let mut cfg = cfg.clone();
    cfg.flight_k = 0;
    run_campaign_observed(
        &cfg,
        schema,
        |i, scratch, digest, _worst| per_call(i, scratch, digest),
        progress,
        |_| {},
    )
}

/// [`run_campaign`] with the flight recorder and heartbeat attached:
/// the fold additionally receives the shard's [`WorstK`] selector
/// (inert when `cfg.flight_k == 0`), and `heartbeat` is invoked from
/// worker threads as each freshly executed shard completes. The merged
/// selector and aggregated [`CampaignHealth`] land on the outcome.
pub fn run_campaign_observed<F, P, H>(
    cfg: &CampaignConfig,
    schema: &DigestSchema,
    per_call: F,
    progress: P,
    heartbeat: H,
) -> std::io::Result<CampaignOutcome>
where
    F: Fn(u64, &mut MetricsScratch, &mut ShardDigest, &mut WorstK) + Sync,
    P: Fn(&CampaignProgress) + Sync,
    H: Fn(&HeartbeatSample) + Sync,
{
    let started = Instant::now();
    let shards_total = cfg.shards();
    let id = cfg.campaign_id(schema);
    if shards_total == 0 {
        let empty = ShardDigest::new(schema, 0, 0);
        let fp = empty.fingerprint(schema);
        return Ok(CampaignOutcome {
            digest: Some(empty),
            fingerprint: Some(fp),
            flight: (cfg.flight_k > 0).then(|| WorstK::new(cfg.flight_k)),
            health: CampaignHealth::default(),
            shards_total: 0,
            shards_run: 0,
            shards_resumed: 0,
            complete: true,
            quarantined: Vec::new(),
            checkpoint_errors: 0,
            slow_shards: Vec::new(),
        });
    }

    // Phase 1: validity scan. Decide per shard whether its checkpoint
    // resumes (parse + campaign-id + range check), dropping each parsed
    // digest immediately — only a bit per shard is retained. Shards are
    // re-read during the merge pass; checkpoint files are small and this
    // keeps resident memory flat no matter how many shards resumed.
    let mut valid = vec![false; shards_total];
    if let Some(dir) = &cfg.checkpoint_dir {
        std::fs::create_dir_all(dir)?;
        for (s, v) in valid.iter_mut().enumerate() {
            *v = load_shard(dir, s, id, schema, cfg.shard_range(s), cfg.flight_k, cfg.io_retries)
                .is_some();
        }
    }
    let shards_resumed = valid.iter().filter(|v| **v).count();

    // Which missing shards this run may execute: the first
    // `max_new_shards` in index order — deterministic, so a killed run
    // always leaves the same prefix of checkpoints behind.
    let mut todo: Vec<usize> = (0..shards_total).filter(|&s| !valid[s]).collect();
    let skipped = cfg.max_new_shards.map_or(0, |cap| todo.len().saturating_sub(cap));
    if let Some(cap) = cfg.max_new_shards {
        todo.truncate(cap);
    }
    let may_run = {
        let mut m = vec![false; shards_total];
        for &s in &todo {
            m[s] = true;
        }
        m
    };
    let calls_planned: u64 = todo.iter().map(|&s| cfg.shard_range(s).1).sum();

    let calls_done = AtomicU64::new(0);
    let shards_done = AtomicUsize::new(shards_resumed);
    let publish = |calls: u64| {
        progress(&CampaignProgress {
            calls_done: calls,
            calls_planned,
            shards_done: shards_done.load(Ordering::Relaxed),
            shards_total,
            shards_resumed,
        });
    };
    if shards_resumed > 0 || todo.is_empty() {
        publish(0);
    }

    let runner =
        if cfg.threads == 0 { SweepRunner::available() } else { SweepRunner::new(cfg.threads) };
    // Batch size: enough shards per barrier to keep every worker busy,
    // small enough that the live digest set stays O(threads), not
    // O(shards).
    let batch = (runner.threads() * 4).max(8);

    /// How one shard of a batch resolved.
    enum ShardResult {
        /// Resumed from disk (`None` timing) or run fresh (`Some`).
        Done(ShardDigest, WorstK, Option<(u64, u64)>),
        /// The fold panicked; isolated, carrying the panic message.
        Quarantined(String),
        /// Missing: over the `max_new_shards` cap, or a phase-1-valid
        /// checkpoint that changed underneath us.
        Missing,
    }

    let checkpoint_errors = AtomicUsize::new(0);

    // Phase 2: produce + merge, one index-ordered batch at a time. A
    // `Missing` or `Quarantined` shard stops the *merge* (a gapped merge
    // would silently drop shards) but never the *production*: every
    // runnable shard after a bad one still executes and checkpoints, so a
    // degraded campaign leaves the maximum salvageable state behind.
    let mut merged: Option<ShardDigest> = None;
    let mut merged_flight = WorstK::new(cfg.flight_k);
    let mut health = CampaignHealth::default();
    let mut shards_run = 0usize;
    let mut complete = true;
    let mut merge_ok = true;
    let mut quarantined: Vec<ShardQuarantine> = Vec::new();
    let mut slow_shards: Vec<usize> = Vec::new();
    let mut next = 0usize;
    while next < shards_total {
        let n = batch.min(shards_total - next);
        let first_shard = next;
        let results: Vec<ShardResult> =
            runner.run_indexed_with(n, MetricsScratch::new, |j, scratch| {
                let s = first_shard + j;
                let (first, len) = cfg.shard_range(s);
                if valid[s] {
                    // Validated in phase 1; a miss here means the file
                    // changed underneath us — surfaced as an incomplete
                    // campaign rather than silently re-running.
                    let Some(dir) = cfg.checkpoint_dir.as_ref() else {
                        return ShardResult::Missing; // unreachable: valid implies dir
                    };
                    return match load_shard(
                        dir,
                        s,
                        id,
                        schema,
                        (first, len),
                        cfg.flight_k,
                        cfg.io_retries,
                    ) {
                        Some((d, w)) => ShardResult::Done(d, w, None),
                        None => ShardResult::Missing,
                    };
                }
                if !may_run[s] {
                    return ShardResult::Missing;
                }
                let shard_start = Instant::now();
                // Panic isolation: the fold runs under `catch_unwind`, so
                // one poisoned call quarantines its shard instead of
                // tearing down the campaign. Folds are pure functions of
                // the call index, so a panic — and hence the quarantine
                // decision — is deterministic.
                let folded = catch_unwind(AssertUnwindSafe(|| {
                    let mut digest = ShardDigest::new(schema, first, len);
                    let mut worst = WorstK::new(cfg.flight_k);
                    let mut since_publish = 0u64;
                    for i in first..first + len {
                        per_call(i, scratch, &mut digest, &mut worst);
                        since_publish += 1;
                        if since_publish == PROGRESS_CHUNK {
                            let done = calls_done.fetch_add(since_publish, Ordering::Relaxed)
                                + since_publish;
                            since_publish = 0;
                            publish(done);
                        }
                    }
                    (digest, worst, since_publish)
                }));
                let (digest, worst, since_publish) = match folded {
                    Ok(v) => v,
                    Err(payload) => {
                        // The scratch may have been abandoned mid-mutation;
                        // hand the worker a fresh one before its next task.
                        *scratch = MetricsScratch::new();
                        return ShardResult::Quarantined(panic_message(payload));
                    }
                };
                let shard_wall_ns = elapsed_ns(shard_start);
                let done =
                    calls_done.fetch_add(since_publish, Ordering::Relaxed) + since_publish;
                let mut checkpoint_write_ns = 0;
                if let Some(dir) = &cfg.checkpoint_dir {
                    // A checkpoint failure (after retries) is surfaced in
                    // the outcome, but is not worth killing a running
                    // campaign over: the shard result is still correct, a
                    // later run simply re-executes it.
                    let write_start = Instant::now();
                    let flight = (cfg.flight_k > 0).then_some(&worst);
                    if store_shard(dir, s, id, schema, &digest, flight, cfg.io_retries).is_err()
                    {
                        checkpoint_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    checkpoint_write_ns = elapsed_ns(write_start);
                }
                let finished = shards_done.fetch_add(1, Ordering::Relaxed) + 1;
                publish(done);
                heartbeat(&HeartbeatSample {
                    shard: s,
                    calls: len,
                    shard_wall_ns,
                    checkpoint_write_ns,
                    shards_done: finished,
                    shards_total,
                    calls_done: done,
                    elapsed_ns: elapsed_ns(started),
                });
                ShardResult::Done(digest, worst, Some((shard_wall_ns, checkpoint_write_ns)))
            });
        next += n;
        let merge_start = Instant::now();
        for (j, r) in results.into_iter().enumerate() {
            let s = first_shard + j;
            match r {
                ShardResult::Done(d, w, timing) => {
                    if !valid[s] {
                        shards_run += 1;
                    }
                    if let Some((wall, ckpt)) = timing {
                        health.shard_wall_us.record(wall / 1_000);
                        if cfg.checkpoint_dir.is_some() {
                            health.checkpoint_write_us.record(ckpt / 1_000);
                        }
                        health.calls_folded += d.len();
                        if cfg.watchdog_ns.is_some_and(|limit| wall > limit) {
                            slow_shards.push(s);
                        }
                    }
                    if merge_ok {
                        merged_flight.merge_from(&w);
                        match &mut merged {
                            None => merged = Some(d),
                            Some(acc) => acc.merge_from(&d),
                        }
                    }
                }
                ShardResult::Quarantined(reason) => {
                    complete = false;
                    merge_ok = false;
                    quarantined.push(ShardQuarantine { shard: s, reason });
                }
                ShardResult::Missing => {
                    complete = false;
                    merge_ok = false;
                }
            }
        }
        health.merge_ns += elapsed_ns(merge_start);
    }
    // Shards past the cap never ran; they are missing by construction.
    if skipped > 0 {
        complete = false;
    }
    health.elapsed_ns = elapsed_ns(started);

    let (digest, fingerprint, flight) = if complete {
        match merged {
            Some(m) => {
                let fp = m.fingerprint(schema);
                (Some(m), Some(fp), (cfg.flight_k > 0).then_some(merged_flight))
            }
            // Structurally unreachable (shards_total == 0 returned early),
            // but a propagated error beats a panic on an engine bug.
            None => {
                return Err(std::io::Error::other(
                    "campaign marked complete with no merged shards",
                ))
            }
        }
    } else {
        (None, None, None)
    };

    Ok(CampaignOutcome {
        digest,
        fingerprint,
        flight,
        health,
        shards_total,
        shards_run,
        shards_resumed,
        complete,
        quarantined,
        checkpoint_errors: checkpoint_errors.load(Ordering::Relaxed),
        slow_shards,
    })
}

/// Saturating wall-clock nanoseconds since `start`.
fn elapsed_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::ChannelId;
    use crate::flight::FlightKey;
    use crate::rng::SeedFactory;

    fn schema() -> (DigestSchema, [ChannelId; 3]) {
        let mut s = DigestSchema::new();
        let a = s.counter("events");
        let b = s.summary("value");
        let c = s.sketch("value_q");
        (s, [a, b, c])
    }

    fn fold(ids: [ChannelId; 3]) -> impl Fn(u64, &mut MetricsScratch, &mut ShardDigest) + Sync {
        let seeds = SeedFactory::new(0xCA3A16);
        move |i, _scratch, d| {
            let mut rng = seeds.stream("call", i);
            d.add(ids[0], 1);
            let x = rng.normal(5.0, 2.0);
            d.observe(ids[1], x);
            d.sketch_insert(ids[2], x);
        }
    }

    /// The observed fold: same digest work as [`fold`], plus every call
    /// below the trigger offers its score to the flight selector.
    fn observed_fold(
        ids: [ChannelId; 3],
        trigger: f64,
    ) -> impl Fn(u64, &mut MetricsScratch, &mut ShardDigest, &mut WorstK) + Sync {
        let seeds = SeedFactory::new(0xCA3A16);
        move |i, _scratch, d, worst| {
            let mut rng = seeds.stream("call", i);
            d.add(ids[0], 1);
            let x = rng.normal(5.0, 2.0);
            d.observe(ids[1], x);
            d.sketch_insert(ids[2], x);
            if x < trigger {
                worst.offer(FlightKey { score: x, seed: 0xCA3A16, index: i });
            }
        }
    }

    #[test]
    fn campaign_is_thread_count_invariant() {
        let (schema, ids) = schema();
        let mut fps = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let mut cfg = CampaignConfig::new(10_000);
            cfg.shard_size = 768;
            cfg.threads = threads;
            let out = cfg.run(&schema, fold(ids), |_| {}).unwrap();
            assert!(out.complete);
            assert_eq!(out.shards_run, cfg.shards());
            fps.push(out.fingerprint.unwrap());
        }
        assert!(fps.windows(2).all(|w| w[0] == w[1]), "fingerprints differ: {fps:x?}");
    }

    #[test]
    fn campaign_digest_matches_serial_fold() {
        let (schema, ids) = schema();
        let n = 5000u64;
        let mut cfg = CampaignConfig::new(n);
        cfg.shard_size = 512;
        cfg.threads = 4;
        let out = cfg.run(&schema, fold(ids), |_| {}).unwrap();

        let f = fold(ids);
        let mut scratch = MetricsScratch::new();
        let mut whole = ShardDigest::new(&schema, 0, n);
        for i in 0..n {
            f(i, &mut scratch, &mut whole);
        }
        // The sharded sketch differs from the single-pass sketch only by
        // compaction boundaries; counters and summaries must agree
        // exactly.
        let got = out.digest.unwrap();
        assert_eq!(got.count(ids[0]), whole.count(ids[0]));
        assert_eq!(got.summary(ids[1]).count(), whole.summary(ids[1]).count());
        assert!((got.summary(ids[1]).mean() - whole.summary(ids[1]).mean()).abs() < 1e-9);
        assert_eq!(
            got.summary(ids[1]).min().to_bits(),
            whole.summary(ids[1]).min().to_bits()
        );
    }

    #[test]
    fn progress_reaches_total() {
        let (schema, ids) = schema();
        let mut cfg = CampaignConfig::new(9000);
        cfg.shard_size = 1024;
        cfg.threads = 2;
        let max_seen = AtomicU64::new(0);
        let out = cfg
            .run(&schema, fold(ids), |p| {
                max_seen.fetch_max(p.calls_done, Ordering::Relaxed);
                assert!(p.shards_done <= p.shards_total);
            })
            .unwrap();
        assert!(out.complete);
        assert_eq!(max_seen.load(Ordering::Relaxed), 9000);
    }

    #[test]
    fn resume_is_bit_identical_and_corruption_is_survived() {
        let (schema, ids) = schema();
        let dir = std::env::temp_dir().join(format!(
            "diversifi-campaign-test-{}-{}",
            std::process::id(),
            0xC0FFEEu32
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut cfg = CampaignConfig::new(6000);
        cfg.shard_size = 500;
        cfg.threads = 4;

        // Uninterrupted reference (no checkpointing at all).
        let reference = cfg.run(&schema, fold(ids), |_| {}).unwrap();

        // Interrupted: run only 5 of the 12 shards, then "kill".
        cfg.checkpoint_dir = Some(dir.clone());
        cfg.max_new_shards = Some(5);
        let partial = cfg.run(&schema, fold(ids), |_| {}).unwrap();
        assert!(!partial.complete);
        assert_eq!(partial.shards_run, 5);
        assert!(partial.digest.is_none());

        // Simulate a kill mid-checkpoint-write: corrupt one finished shard
        // and truncate another to garbage.
        std::fs::write(shard_path(&dir, 0), "{\"campaign_id\":1,tr").unwrap();
        std::fs::write(shard_path(&dir, 1), "").unwrap();

        // Resume to completion.
        cfg.max_new_shards = None;
        let resumed = cfg.run(&schema, fold(ids), |_| {}).unwrap();
        assert!(resumed.complete);
        // 3 valid checkpoints survive (5 written − 2 corrupted).
        assert_eq!(resumed.shards_resumed, 3);
        assert_eq!(resumed.shards_run, cfg.shards() - 3);
        assert_eq!(resumed.fingerprint, reference.fingerprint);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoints_from_other_campaigns_are_rejected() {
        let (schema, ids) = schema();
        let dir = std::env::temp_dir().join(format!(
            "diversifi-campaign-test-{}-{}",
            std::process::id(),
            0xBEEFu32
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut cfg = CampaignConfig::new(2000);
        cfg.shard_size = 400;
        cfg.checkpoint_dir = Some(dir.clone());
        cfg.config_fingerprint = 1;
        cfg.run(&schema, fold(ids), |_| {}).unwrap();

        // Same directory, different config fingerprint: nothing resumes.
        cfg.config_fingerprint = 2;
        let out = cfg.run(&schema, fold(ids), |_| {}).unwrap();
        assert_eq!(out.shards_resumed, 0);
        assert_eq!(out.shards_run, cfg.shards());

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The core observability contract at engine level: same digest
    /// fingerprint with the recorder on or off, and the same top-K set at
    /// every thread count.
    #[test]
    fn flight_selection_never_perturbs_digests_and_is_thread_invariant() {
        let (schema, ids) = schema();
        let mut selections: Vec<Vec<(u64, u64)>> = Vec::new();
        let mut fps = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let mut cfg = CampaignConfig::new(10_000);
            cfg.shard_size = 768;
            cfg.threads = threads;
            cfg.flight_k = 6;
            let out = run_campaign_observed(
                &cfg,
                &schema,
                observed_fold(ids, 2.0),
                |_| {},
                |_| {},
            )
            .unwrap();
            assert!(out.complete);
            fps.push(out.fingerprint.unwrap());
            let flight = out.flight.expect("flight_k > 0 yields a selector");
            assert!(flight.len() <= 6);
            assert!(!flight.is_empty(), "normal(5,2) dips under 2.0 in 10k draws");
            selections.push(
                flight.entries().iter().map(|e| (e.index, e.score.to_bits())).collect(),
            );
        }
        assert!(selections.windows(2).all(|w| w[0] == w[1]), "top-K differs: {selections:?}");

        // Recorder off: identical digest fingerprint.
        let mut cfg = CampaignConfig::new(10_000);
        cfg.shard_size = 768;
        let off = cfg.run(&schema, fold(ids), |_| {}).unwrap();
        assert!(fps.iter().all(|fp| *fp == off.fingerprint.unwrap()));
    }

    /// Kill/resume with the recorder on: the selector survives shard
    /// checkpoints exactly, and recorder-on checkpoints never resume into
    /// a recorder-off campaign (or one with a different k).
    #[test]
    fn flight_selection_survives_kill_resume_bit_exactly() {
        let (schema, ids) = schema();
        let dir = std::env::temp_dir().join(format!(
            "diversifi-flight-test-{}-{}",
            std::process::id(),
            0xF11E57u32
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut cfg = CampaignConfig::new(6000);
        cfg.shard_size = 500;
        cfg.threads = 4;
        cfg.flight_k = 5;

        let reference =
            run_campaign_observed(&cfg, &schema, observed_fold(ids, 3.0), |_| {}, |_| {})
                .unwrap();

        cfg.checkpoint_dir = Some(dir.clone());
        cfg.max_new_shards = Some(5);
        let partial =
            run_campaign_observed(&cfg, &schema, observed_fold(ids, 3.0), |_| {}, |_| {})
                .unwrap();
        assert!(!partial.complete);
        assert!(partial.flight.is_none(), "incomplete campaigns offer no selection");

        cfg.max_new_shards = None;
        let hb_shards = AtomicUsize::new(0);
        let resumed = run_campaign_observed(
            &cfg,
            &schema,
            observed_fold(ids, 3.0),
            |_| {},
            |hb| {
                assert!(hb.calls > 0 && hb.shards_done <= hb.shards_total);
                hb_shards.fetch_add(1, Ordering::Relaxed);
            },
        )
        .unwrap();
        assert!(resumed.complete);
        assert_eq!(resumed.fingerprint, reference.fingerprint);
        // Heartbeats fire once per freshly executed shard.
        assert_eq!(hb_shards.load(Ordering::Relaxed), resumed.shards_run);
        assert!(resumed.health.shard_wall_us.count() == resumed.shards_run as u64);
        let (a, b) = (reference.flight.unwrap(), resumed.flight.unwrap());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.entries().iter().zip(b.entries()) {
            assert_eq!(x.score.to_bits(), y.score.to_bits());
            assert_eq!((x.seed, x.index), (y.seed, y.index));
        }

        // A recorder-off run over the same directory must reject every
        // recorder-on checkpoint (different campaign id), not merge them.
        let mut off = cfg.clone();
        off.flight_k = 0;
        let out = off.run(&schema, fold(ids), |_| {}).unwrap();
        assert_eq!(out.shards_resumed, 0);
        assert_eq!(out.fingerprint, reference.fingerprint);

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The digest fold, except one specific call panics — the poisoned
    /// shard injection used by the supervisor tests.
    fn poisoned_fold(
        ids: [ChannelId; 3],
        poison: u64,
    ) -> impl Fn(u64, &mut MetricsScratch, &mut ShardDigest) + Sync {
        let inner = fold(ids);
        move |i, scratch, d| {
            assert!(i != poison, "call {i} poisoned");
            inner(i, scratch, d);
        }
    }

    /// A panicking shard is quarantined — the campaign completes degraded
    /// (every other shard runs), reports the shard and its panic message,
    /// and the quarantine decision is identical at every thread count.
    #[test]
    fn poisoned_shard_is_quarantined_not_fatal() {
        let (schema, ids) = schema();
        for threads in [1usize, 4] {
            let mut cfg = CampaignConfig::new(6000);
            cfg.shard_size = 500;
            cfg.threads = threads;
            // Call 1700 lives in shard 3.
            let out = cfg.run(&schema, poisoned_fold(ids, 1700), |_| {}).unwrap();
            assert!(!out.complete, "threads={threads}");
            assert!(out.digest.is_none() && out.fingerprint.is_none());
            assert_eq!(out.quarantined.len(), 1);
            assert_eq!(out.quarantined[0].shard, 3);
            assert!(
                out.quarantined[0].reason.contains("poisoned"),
                "panic message must survive: {:?}",
                out.quarantined[0].reason
            );
            // Every healthy shard still ran.
            assert_eq!(out.shards_run, cfg.shards() - 1, "threads={threads}");
        }
    }

    /// Satellite: resume-after-quarantine. A campaign with one poisoned
    /// shard checkpoints every healthy shard byte-identically to an
    /// unpoisoned run, and resuming with the fixed fold re-executes only
    /// the quarantined shard and lands on the reference fingerprint.
    #[test]
    fn resume_after_quarantine_is_bit_identical() {
        let (schema, ids) = schema();
        let mk_dir = |tag: u32| {
            let dir = std::env::temp_dir().join(format!(
                "diversifi-quarantine-test-{}-{tag}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            dir
        };
        let poisoned_dir = mk_dir(1);
        let clean_dir = mk_dir(2);

        let mut cfg = CampaignConfig::new(6000);
        cfg.shard_size = 500;
        cfg.threads = 4;

        // Unpoisoned references: one without checkpoints (fingerprint),
        // one with (per-shard checkpoint bytes).
        let reference = cfg.run(&schema, fold(ids), |_| {}).unwrap();
        cfg.checkpoint_dir = Some(clean_dir.clone());
        let clean = cfg.run(&schema, fold(ids), |_| {}).unwrap();
        assert_eq!(clean.fingerprint, reference.fingerprint);

        // Poisoned run: shard 3 dies, everything else checkpoints.
        cfg.checkpoint_dir = Some(poisoned_dir.clone());
        let poisoned = cfg.run(&schema, poisoned_fold(ids, 1700), |_| {}).unwrap();
        assert!(!poisoned.complete);
        assert_eq!(poisoned.quarantined.len(), 1);
        assert_eq!(poisoned.quarantined[0].shard, 3);
        for s in 0..cfg.shards() {
            let path = shard_path(&poisoned_dir, s);
            if s == 3 {
                assert!(!path.exists(), "quarantined shard must not checkpoint");
            } else {
                // Healthy-shard checkpoints are byte-identical to the
                // unpoisoned run's.
                let a = std::fs::read(&path).unwrap();
                let b = std::fs::read(shard_path(&clean_dir, s)).unwrap();
                assert_eq!(a, b, "shard {s} checkpoint differs");
            }
        }

        // Resume with the fixed fold: only the quarantined shard re-runs.
        let resumed = cfg.run(&schema, fold(ids), |_| {}).unwrap();
        assert!(resumed.complete);
        assert!(resumed.quarantined.is_empty());
        assert_eq!(resumed.shards_resumed, cfg.shards() - 1);
        assert_eq!(resumed.shards_run, 1);
        assert_eq!(resumed.fingerprint, reference.fingerprint);

        let _ = std::fs::remove_dir_all(&poisoned_dir);
        let _ = std::fs::remove_dir_all(&clean_dir);
    }

    /// The watchdog observes (flags slow shards) but never decides: the
    /// fingerprint is bit-identical with it on or off.
    #[test]
    fn watchdog_is_observational_only() {
        let (schema, ids) = schema();
        let mut cfg = CampaignConfig::new(4000);
        cfg.shard_size = 500;
        let off = cfg.run(&schema, fold(ids), |_| {}).unwrap();
        assert!(off.slow_shards.is_empty(), "no watchdog, no flags");
        cfg.watchdog_ns = Some(0); // every fold exceeds 0 ns
        let on = cfg.run(&schema, fold(ids), |_| {}).unwrap();
        assert!(on.complete);
        assert_eq!(on.fingerprint, off.fingerprint);
        assert_eq!(on.slow_shards, (0..cfg.shards()).collect::<Vec<_>>());
    }

    /// A checkpoint write that keeps failing is counted and survived —
    /// the campaign completes with a correct digest; only resume coverage
    /// is lost for that shard.
    #[test]
    fn checkpoint_write_failure_degrades_not_panics() {
        let (schema, ids) = schema();
        let dir = std::env::temp_dir().join(format!(
            "diversifi-ckpt-fail-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Occupy shard 0's temp path with a *directory*: fs::write fails
        // (EISDIR) every attempt, exhausting the retries.
        std::fs::create_dir_all(dir.join("shard-000000.json.tmp")).unwrap();

        let mut cfg = CampaignConfig::new(2000);
        cfg.shard_size = 500;
        cfg.checkpoint_dir = Some(dir.clone());
        cfg.io_retries = 1;
        let out = cfg.run(&schema, fold(ids), |_| {}).unwrap();
        assert!(out.complete, "IO failure must not block the fold");
        assert_eq!(out.checkpoint_errors, 1);
        assert!(out.digest.is_some());
        // The other shards checkpointed fine.
        assert!(shard_path(&dir, 1).exists());
        assert!(!shard_path(&dir, 0).exists());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
