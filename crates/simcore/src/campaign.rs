//! Sharded million-call campaign engine with checkpoint/resume.
//!
//! A *campaign* folds `n_calls` independent, seeded calls into one
//! [`ShardDigest`](crate::digest::ShardDigest). The call range is cut into
//! contiguous shards; shards run in parallel on a [`SweepRunner`], each one
//! folded serially in index order into its own digest, and the per-shard
//! digests merge in shard order — so the campaign digest is a pure
//! function of `(fold, n_calls, shard_size)` at **any** thread count, and
//! peak memory is one digest plus one [`MetricsScratch`] per worker,
//! independent of `n_calls`.
//!
//! # Checkpoint/resume
//!
//! With a checkpoint directory configured, every completed shard writes
//! `shard-NNNNNN.json` (atomically: temp file + rename) carrying the
//! campaign id, the shard's call range and its serialised digest. A later
//! run with the same configuration loads the completed shards, re-runs
//! only the missing ones, and — because digest serialisation round-trips
//! floats exactly and the merge order is fixed — produces a campaign
//! digest **bit-identical** to an uninterrupted run. A checkpoint whose
//! campaign id, schema layout or call range disagrees, or that fails to
//! parse (e.g. a file truncated by a kill), is discarded and its shard
//! re-run; resume never degrades to a silently different result.
//!
//! The engine itself never prints; callers observe progress through the
//! [`progress`](CampaignConfig::run) callback (the `repro --campaign`
//! front-end turns it into a calls/sec ticker).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use serde::Value;

use crate::digest::{DigestSchema, ShardDigest};
use crate::scratch::MetricsScratch;
use crate::par::SweepRunner;

/// How often (in calls) workers publish progress between shard
/// boundaries. Purely a reporting cadence — small enough for a live
/// calls/sec ticker, large enough that the atomic add never shows up in
/// profiles.
const PROGRESS_CHUNK: u64 = 4096;

/// Configuration of one campaign run.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Total calls to fold.
    pub n_calls: u64,
    /// Calls per shard (the checkpoint granularity). The last shard may be
    /// short.
    pub shard_size: u64,
    /// Worker threads; `0` means [`SweepRunner::available`].
    pub threads: usize,
    /// Where to write/load per-shard checkpoints; `None` disables
    /// checkpointing entirely.
    pub checkpoint_dir: Option<PathBuf>,
    /// Caller-supplied fingerprint of everything that determines the fold
    /// (scenario, seed, …). Folded together with the digest schema and the
    /// shard plan into the id that guards checkpoints.
    pub config_fingerprint: u64,
    /// Stop after this many *newly executed* shards (resumed shards don't
    /// count), leaving a partial checkpoint directory behind. `None` runs
    /// to completion. This is how tests — and budget-limited runs —
    /// simulate a mid-campaign kill deterministically.
    pub max_new_shards: Option<usize>,
}

impl CampaignConfig {
    /// A campaign over `n_calls` with the default shard size (8192 calls),
    /// auto threads, no checkpointing.
    pub fn new(n_calls: u64) -> CampaignConfig {
        CampaignConfig {
            n_calls,
            shard_size: 8192,
            threads: 0,
            checkpoint_dir: None,
            config_fingerprint: 0,
            max_new_shards: None,
        }
    }

    /// Number of shards in the plan.
    pub fn shards(&self) -> usize {
        assert!(self.shard_size > 0, "shard_size must be positive");
        (self.n_calls.div_ceil(self.shard_size)) as usize
    }

    /// Call range `[first, first + len)` of shard `s`.
    pub fn shard_range(&self, s: usize) -> (u64, u64) {
        let first = s as u64 * self.shard_size;
        let len = self.shard_size.min(self.n_calls - first);
        (first, len)
    }

    /// The id stamped into (and demanded of) every checkpoint: the
    /// caller's config fingerprint folded with the schema layout and the
    /// shard plan, so a checkpoint from any other campaign shape can never
    /// be resumed into this one.
    pub fn campaign_id(&self, schema: &DigestSchema) -> u64 {
        let mut id = 0xcbf29ce484222325u64;
        for v in
            [self.config_fingerprint, schema.fingerprint(), self.n_calls, self.shard_size]
        {
            for b in v.to_le_bytes() {
                id ^= b as u64;
                id = id.wrapping_mul(0x100000001b3);
            }
        }
        id
    }

    /// Run the campaign. See [`run_campaign`].
    pub fn run<F, P>(
        &self,
        schema: &DigestSchema,
        per_call: F,
        progress: P,
    ) -> std::io::Result<CampaignOutcome>
    where
        F: Fn(u64, &mut MetricsScratch, &mut ShardDigest) + Sync,
        P: Fn(&CampaignProgress) + Sync,
    {
        run_campaign(self, schema, per_call, progress)
    }
}

/// A progress snapshot, published on shard completion and every
/// [`PROGRESS_CHUNK`] calls in between.
#[derive(Clone, Copy, Debug)]
pub struct CampaignProgress {
    /// Calls folded so far (monotone, across all workers).
    pub calls_done: u64,
    /// Total calls the campaign will fold (excluding resumed shards).
    pub calls_planned: u64,
    /// Shards finished so far (run or resumed).
    pub shards_done: usize,
    /// Total shards in the plan.
    pub shards_total: usize,
    /// Of the finished shards, how many were loaded from checkpoints.
    pub shards_resumed: usize,
}

/// What a campaign run produced.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// The merged digest over `[0, n_calls)` — `None` when the run was
    /// truncated by `max_new_shards` (a partial merge would silently drop
    /// trailing shards, so none is offered).
    pub digest: Option<ShardDigest>,
    /// Fingerprint of the merged digest (see
    /// [`ShardDigest::fingerprint`]); `None` when incomplete.
    pub fingerprint: Option<u64>,
    /// Shards in the plan.
    pub shards_total: usize,
    /// Shards executed by this run.
    pub shards_run: usize,
    /// Shards loaded from checkpoints.
    pub shards_resumed: usize,
    /// True when every shard is accounted for.
    pub complete: bool,
}

fn shard_path(dir: &Path, s: usize) -> PathBuf {
    dir.join(format!("shard-{s:06}.json"))
}

/// Load one shard checkpoint, returning `None` (shard will re-run) on any
/// mismatch or corruption.
fn load_shard(
    dir: &Path,
    s: usize,
    id: u64,
    schema: &DigestSchema,
    want: (u64, u64),
) -> Option<ShardDigest> {
    let text = std::fs::read_to_string(shard_path(dir, s)).ok()?;
    let v: Value = serde_json::from_str(&text).ok()?;
    let file_id = v.get("campaign_id").and_then(Value::as_u64)?;
    if file_id != id {
        return None;
    }
    let d = ShardDigest::from_value_checked(schema, v.get("digest")?).ok()?;
    if (d.first(), d.len()) != want {
        return None;
    }
    Some(d)
}

/// Write one shard checkpoint atomically (temp file in the same directory,
/// then rename), so a kill mid-write leaves either the old state or a
/// `.tmp` orphan — never a half-written checkpoint under the final name.
fn store_shard(
    dir: &Path,
    s: usize,
    id: u64,
    schema: &DigestSchema,
    digest: &ShardDigest,
) -> std::io::Result<()> {
    let body = Value::Object(vec![
        ("campaign_id".to_string(), Value::U64(id)),
        ("shard".to_string(), Value::U64(s as u64)),
        ("digest".to_string(), digest.to_value(schema)),
    ]);
    let text = serde_json::to_string(&body)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let tmp = dir.join(format!("shard-{s:06}.json.tmp"));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, shard_path(dir, s))
}

/// Execute a sharded campaign: resume what the checkpoint directory
/// already holds, run the remaining shards on a [`SweepRunner`], and merge
/// everything in shard order.
///
/// `per_call(i, scratch, digest)` must be a pure function of `i` given the
/// campaign configuration — the same contract as every other sweep, and
/// what makes resumption bit-exact. The scratch is the usual per-worker
/// metrics buffer bundle; the digest is the shard's accumulator.
///
/// Memory is **independent of the campaign size**: shards are produced in
/// index-ordered batches of a few per worker and merged into a single
/// running digest as each batch completes, so at most one batch of shard
/// digests is ever live — a 100k-call and a 100M-call campaign peak at the
/// same RSS. The merge consumes shards strictly in index order, which is
/// what keeps fingerprints bit-identical across thread counts and
/// resume/uninterrupted runs.
pub fn run_campaign<F, P>(
    cfg: &CampaignConfig,
    schema: &DigestSchema,
    per_call: F,
    progress: P,
) -> std::io::Result<CampaignOutcome>
where
    F: Fn(u64, &mut MetricsScratch, &mut ShardDigest) + Sync,
    P: Fn(&CampaignProgress) + Sync,
{
    let shards_total = cfg.shards();
    let id = cfg.campaign_id(schema);
    if shards_total == 0 {
        let empty = ShardDigest::new(schema, 0, 0);
        let fp = empty.fingerprint(schema);
        return Ok(CampaignOutcome {
            digest: Some(empty),
            fingerprint: Some(fp),
            shards_total: 0,
            shards_run: 0,
            shards_resumed: 0,
            complete: true,
        });
    }

    // Phase 1: validity scan. Decide per shard whether its checkpoint
    // resumes (parse + campaign-id + range check), dropping each parsed
    // digest immediately — only a bit per shard is retained. Shards are
    // re-read during the merge pass; checkpoint files are small and this
    // keeps resident memory flat no matter how many shards resumed.
    let mut valid = vec![false; shards_total];
    if let Some(dir) = &cfg.checkpoint_dir {
        std::fs::create_dir_all(dir)?;
        for (s, v) in valid.iter_mut().enumerate() {
            *v = load_shard(dir, s, id, schema, cfg.shard_range(s)).is_some();
        }
    }
    let shards_resumed = valid.iter().filter(|v| **v).count();

    // Which missing shards this run may execute: the first
    // `max_new_shards` in index order — deterministic, so a killed run
    // always leaves the same prefix of checkpoints behind.
    let mut todo: Vec<usize> = (0..shards_total).filter(|&s| !valid[s]).collect();
    let skipped = cfg.max_new_shards.map_or(0, |cap| todo.len().saturating_sub(cap));
    if let Some(cap) = cfg.max_new_shards {
        todo.truncate(cap);
    }
    let may_run = {
        let mut m = vec![false; shards_total];
        for &s in &todo {
            m[s] = true;
        }
        m
    };
    let calls_planned: u64 = todo.iter().map(|&s| cfg.shard_range(s).1).sum();

    let calls_done = AtomicU64::new(0);
    let shards_done = AtomicUsize::new(shards_resumed);
    let publish = |calls: u64| {
        progress(&CampaignProgress {
            calls_done: calls,
            calls_planned,
            shards_done: shards_done.load(Ordering::Relaxed),
            shards_total,
            shards_resumed,
        });
    };
    if shards_resumed > 0 || todo.is_empty() {
        publish(0);
    }

    let runner =
        if cfg.threads == 0 { SweepRunner::available() } else { SweepRunner::new(cfg.threads) };
    // Batch size: enough shards per barrier to keep every worker busy,
    // small enough that the live digest set stays O(threads), not
    // O(shards).
    let batch = (runner.threads() * 4).max(8);

    // Phase 2: produce + merge, one index-ordered batch at a time. Every
    // shard in a batch resolves to Some(digest) (resumed from disk or run
    // fresh) or None (missing but over the max_new_shards cap). Because
    // the executable set is the first missing shards in index order, a
    // None can never precede an unexecuted shard — so merging stops at
    // the first None with no checkpoint left unwritten.
    let mut merged: Option<ShardDigest> = None;
    let mut shards_run = 0usize;
    let mut complete = true;
    let mut next = 0usize;
    'batches: while next < shards_total {
        let n = batch.min(shards_total - next);
        let first_shard = next;
        let results: Vec<Option<ShardDigest>> =
            runner.run_indexed_with(n, MetricsScratch::new, |j, scratch| {
                let s = first_shard + j;
                let (first, len) = cfg.shard_range(s);
                if valid[s] {
                    // Validated in phase 1; a `None` here means the file
                    // changed underneath us — surfaced as an incomplete
                    // campaign rather than silently re-running.
                    let dir = cfg.checkpoint_dir.as_ref().expect("valid implies dir");
                    return load_shard(dir, s, id, schema, (first, len));
                }
                if !may_run[s] {
                    return None;
                }
                let mut digest = ShardDigest::new(schema, first, len);
                let mut since_publish = 0u64;
                for i in first..first + len {
                    per_call(i, scratch, &mut digest);
                    since_publish += 1;
                    if since_publish == PROGRESS_CHUNK {
                        let done = calls_done.fetch_add(since_publish, Ordering::Relaxed)
                            + since_publish;
                        since_publish = 0;
                        publish(done);
                    }
                }
                let done =
                    calls_done.fetch_add(since_publish, Ordering::Relaxed) + since_publish;
                if let Some(dir) = &cfg.checkpoint_dir {
                    // A checkpoint failure is worth surfacing, but not
                    // worth killing a running campaign over: the shard
                    // result is still correct, a later run simply
                    // re-executes it.
                    let _ = store_shard(dir, s, id, schema, &digest);
                }
                shards_done.fetch_add(1, Ordering::Relaxed);
                publish(done);
                Some(digest)
            });
        next += n;
        for (j, r) in results.into_iter().enumerate() {
            let s = first_shard + j;
            match r {
                Some(d) => {
                    if !valid[s] {
                        shards_run += 1;
                    }
                    match &mut merged {
                        None => merged = Some(d),
                        Some(acc) => acc.merge_from(&d),
                    }
                }
                None => {
                    complete = false;
                    break 'batches;
                }
            }
        }
    }
    // Shards past the cap never entered a batch when the skip fired in an
    // earlier one; they are missing by construction.
    if skipped > 0 {
        complete = false;
    }

    let (digest, fingerprint) = if complete {
        let merged = merged.expect("complete campaign has at least one shard");
        let fp = merged.fingerprint(schema);
        (Some(merged), Some(fp))
    } else {
        (None, None)
    };

    Ok(CampaignOutcome {
        digest,
        fingerprint,
        shards_total,
        shards_run,
        shards_resumed,
        complete,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::ChannelId;
    use crate::rng::SeedFactory;

    fn schema() -> (DigestSchema, [ChannelId; 3]) {
        let mut s = DigestSchema::new();
        let a = s.counter("events");
        let b = s.summary("value");
        let c = s.sketch("value_q");
        (s, [a, b, c])
    }

    fn fold(ids: [ChannelId; 3]) -> impl Fn(u64, &mut MetricsScratch, &mut ShardDigest) + Sync {
        let seeds = SeedFactory::new(0xCA3A16);
        move |i, _scratch, d| {
            let mut rng = seeds.stream("call", i);
            d.add(ids[0], 1);
            let x = rng.normal(5.0, 2.0);
            d.observe(ids[1], x);
            d.sketch_insert(ids[2], x);
        }
    }

    #[test]
    fn campaign_is_thread_count_invariant() {
        let (schema, ids) = schema();
        let mut fps = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let mut cfg = CampaignConfig::new(10_000);
            cfg.shard_size = 768;
            cfg.threads = threads;
            let out = cfg.run(&schema, fold(ids), |_| {}).unwrap();
            assert!(out.complete);
            assert_eq!(out.shards_run, cfg.shards());
            fps.push(out.fingerprint.unwrap());
        }
        assert!(fps.windows(2).all(|w| w[0] == w[1]), "fingerprints differ: {fps:x?}");
    }

    #[test]
    fn campaign_digest_matches_serial_fold() {
        let (schema, ids) = schema();
        let n = 5000u64;
        let mut cfg = CampaignConfig::new(n);
        cfg.shard_size = 512;
        cfg.threads = 4;
        let out = cfg.run(&schema, fold(ids), |_| {}).unwrap();

        let f = fold(ids);
        let mut scratch = MetricsScratch::new();
        let mut whole = ShardDigest::new(&schema, 0, n);
        for i in 0..n {
            f(i, &mut scratch, &mut whole);
        }
        // The sharded sketch differs from the single-pass sketch only by
        // compaction boundaries; counters and summaries must agree
        // exactly.
        let got = out.digest.unwrap();
        assert_eq!(got.count(ids[0]), whole.count(ids[0]));
        assert_eq!(got.summary(ids[1]).count(), whole.summary(ids[1]).count());
        assert!((got.summary(ids[1]).mean() - whole.summary(ids[1]).mean()).abs() < 1e-9);
        assert_eq!(
            got.summary(ids[1]).min().to_bits(),
            whole.summary(ids[1]).min().to_bits()
        );
    }

    #[test]
    fn progress_reaches_total() {
        let (schema, ids) = schema();
        let mut cfg = CampaignConfig::new(9000);
        cfg.shard_size = 1024;
        cfg.threads = 2;
        let max_seen = AtomicU64::new(0);
        let out = cfg
            .run(&schema, fold(ids), |p| {
                max_seen.fetch_max(p.calls_done, Ordering::Relaxed);
                assert!(p.shards_done <= p.shards_total);
            })
            .unwrap();
        assert!(out.complete);
        assert_eq!(max_seen.load(Ordering::Relaxed), 9000);
    }

    #[test]
    fn resume_is_bit_identical_and_corruption_is_survived() {
        let (schema, ids) = schema();
        let dir = std::env::temp_dir().join(format!(
            "diversifi-campaign-test-{}-{}",
            std::process::id(),
            0xC0FFEEu32
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut cfg = CampaignConfig::new(6000);
        cfg.shard_size = 500;
        cfg.threads = 4;

        // Uninterrupted reference (no checkpointing at all).
        let reference = cfg.run(&schema, fold(ids), |_| {}).unwrap();

        // Interrupted: run only 5 of the 12 shards, then "kill".
        cfg.checkpoint_dir = Some(dir.clone());
        cfg.max_new_shards = Some(5);
        let partial = cfg.run(&schema, fold(ids), |_| {}).unwrap();
        assert!(!partial.complete);
        assert_eq!(partial.shards_run, 5);
        assert!(partial.digest.is_none());

        // Simulate a kill mid-checkpoint-write: corrupt one finished shard
        // and truncate another to garbage.
        std::fs::write(shard_path(&dir, 0), "{\"campaign_id\":1,tr").unwrap();
        std::fs::write(shard_path(&dir, 1), "").unwrap();

        // Resume to completion.
        cfg.max_new_shards = None;
        let resumed = cfg.run(&schema, fold(ids), |_| {}).unwrap();
        assert!(resumed.complete);
        // 3 valid checkpoints survive (5 written − 2 corrupted).
        assert_eq!(resumed.shards_resumed, 3);
        assert_eq!(resumed.shards_run, cfg.shards() - 3);
        assert_eq!(resumed.fingerprint, reference.fingerprint);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoints_from_other_campaigns_are_rejected() {
        let (schema, ids) = schema();
        let dir = std::env::temp_dir().join(format!(
            "diversifi-campaign-test-{}-{}",
            std::process::id(),
            0xBEEFu32
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut cfg = CampaignConfig::new(2000);
        cfg.shard_size = 400;
        cfg.checkpoint_dir = Some(dir.clone());
        cfg.config_fingerprint = 1;
        cfg.run(&schema, fold(ids), |_| {}).unwrap();

        // Same directory, different config fingerprint: nothing resumes.
        cfg.config_fingerprint = 2;
        let out = cfg.run(&schema, fold(ids), |_| {}).unwrap();
        assert_eq!(out.shards_resumed, 0);
        assert_eq!(out.shards_run, cfg.shards());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
