//! Telemetry exporters: JSONL, Chrome trace-event JSON, metrics tables.
//!
//! All three render a [`MergedTelemetry`] (single runs wrap themselves
//! via [`MergedTelemetry::from_single`]). JSON is emitted by hand — the
//! formats are flat and fixed, and keeping serde out of the export path
//! means the exporters work identically in every build configuration.
//!
//! The Chrome trace-event output follows the documented JSON array
//! format (`{"traceEvents": [...]}`) understood by `chrome://tracing`
//! and <https://ui.perfetto.dev>:
//!
//! - each run becomes a *process* (`pid` = run index),
//! - each component becomes a named *thread* within it (`tid` derived
//!   from the [`ComponentId`], labelled via `thread_name` metadata),
//! - air exchanges ([`TraceKind::TxStart`]) become duration (`"X"`)
//!   slices using the recorded exchange time,
//! - queue admissions emit counter (`"C"`) tracks of queue depth,
//! - everything else becomes thread-scoped instants (`"i"`).

use std::fmt::Write as _;

use crate::flight::FlightCapture;
use crate::metrics::{MetricValue, MetricsRegistry};
use crate::telemetry::{MergedTelemetry, PhaseProfile, SweepEvent};
use crate::trace::{ComponentId, TraceDetail, TraceEvent, TraceKind};

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Append the detail payload as a JSON object fragment (no braces).
fn detail_fields(d: &TraceDetail, out: &mut String) {
    match *d {
        TraceDetail::None => {}
        TraceDetail::Seq(seq) => {
            let _ = write!(out, "\"seq\":{seq}");
        }
        TraceDetail::Queue { seq, depth, cap } => {
            let _ = write!(out, "\"seq\":{seq},\"depth\":{depth},\"cap\":{cap}");
        }
        TraceDetail::Drop { seq, head } => {
            let _ = write!(out, "\"seq\":{seq},\"head\":{head}");
        }
        TraceDetail::Air { seq, attempts, dur_us } => {
            let _ = write!(out, "\"seq\":{seq},\"attempts\":{attempts},\"dur_us\":{dur_us}");
        }
        TraceDetail::Link { to_secondary } => {
            let _ = write!(out, "\"to_secondary\":{to_secondary}");
        }
        TraceDetail::Power { sleeping } => {
            let _ = write!(out, "\"sleeping\":{sleeping}");
        }
        TraceDetail::Decision { kind, seq } => {
            let _ = write!(out, "\"decision\":\"{}\",\"seq\":{seq}", kind.name());
        }
        TraceDetail::Transport { seq, flight } => {
            let _ = write!(out, "\"seq\":{seq},\"flight\":{flight}");
        }
        TraceDetail::Value(v) => {
            let _ = write!(out, "\"value\":{v}");
        }
        TraceDetail::Fault { window, edge } => {
            let _ = write!(out, "\"window\":{window},\"edge\":\"{}\"", edge.name());
        }
    }
}

/// One JSONL event line (shared by the sweep and flight dumps).
fn push_jsonl_event(out: &mut String, run: u32, ord: u64, event: &TraceEvent) {
    let _ = write!(
        out,
        "{{\"at_ns\":{},\"run\":{run},\"ord\":{ord},\"kind\":\"{}\",\"who\":\"{}\"",
        event.at.as_nanos(),
        event.kind.name(),
        event.who,
    );
    let mut fields = String::new();
    detail_fields(&event.detail, &mut fields);
    if !fields.is_empty() {
        out.push(',');
        out.push_str(&fields);
    }
    out.push_str("}\n");
}

/// Render the merged trace as JSON Lines: one self-contained object per
/// event, in merge order — the grep/jq-friendly dump. `ord` is the
/// within-run emission counter (the merge tiebreaker); `seq`, when
/// present, is the packet sequence number from the event detail. A ring
/// overflow (events evicted before export) announces itself in a leading
/// warning object instead of truncating silently.
pub fn jsonl(merged: &MergedTelemetry) -> String {
    let mut out = String::with_capacity(merged.events.len() * 96);
    if merged.dropped > 0 {
        let _ = writeln!(
            out,
            "{{\"warning\":\"ring_overflow\",\"dropped\":{}}}",
            merged.dropped
        );
    }
    for SweepEvent { run, seq, event } in &merged.events {
        push_jsonl_event(&mut out, *run, *seq, event);
    }
    out
}

/// Stable Chrome-trace thread id for a component (kinds are spaced so
/// indexed components get contiguous tids).
fn tid(who: ComponentId) -> u32 {
    (who.kind as u32) * 16 + u32::from(who.index)
}

fn push_common(out: &mut String, name: &str, ph: char, ts_us: f64, run: u32, tid_: u32) {
    let _ = write!(out, "{{\"name\":\"");
    json_escape(name, out);
    let _ = write!(out, "\",\"ph\":\"{ph}\",\"ts\":{ts_us:.3},\"pid\":{run},\"tid\":{tid_}");
}

fn chrome_sep(out: &mut String, first: &mut bool) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
}

/// Render one trace event in Chrome trace-event form (shared by the
/// sweep and flight exporters). `run` is the pid, `emit_seq` the
/// within-run emission counter.
fn push_chrome_event(out: &mut String, first: &mut bool, run: u32, emit_seq: u64, event: &TraceEvent) {
    let ts_us = event.at.as_nanos() as f64 / 1e3;
    let t = tid(event.who);
    chrome_sep(out, first);
    match event.detail {
        // Air exchanges render as duration slices.
        TraceDetail::Air { seq: pkt, attempts, dur_us } if event.kind == TraceKind::TxStart => {
            push_common(out, &format!("tx seq={pkt}"), 'X', ts_us, run, t);
            let _ = write!(
                out,
                ",\"dur\":{dur_us},\"args\":{{\"seq\":{pkt},\"attempts\":{attempts}}}}}"
            );
        }
        // Queue admissions double as counter samples of queue depth.
        TraceDetail::Queue { seq: pkt, depth, cap } => {
            push_common(out, &format!("{} depth", event.who), 'C', ts_us, run, t);
            let _ = write!(out, ",\"args\":{{\"depth\":{depth}}}}}");
            chrome_sep(out, first);
            push_common(out, event.kind.name(), 'i', ts_us, run, t);
            let _ = write!(
                out,
                ",\"s\":\"t\",\"args\":{{\"seq\":{pkt},\"depth\":{depth},\"cap\":{cap}}}}}"
            );
        }
        _ => {
            push_common(out, event.kind.name(), 'i', ts_us, run, t);
            out.push_str(",\"s\":\"t\",\"args\":{");
            let mut fields = String::new();
            detail_fields(&event.detail, &mut fields);
            out.push_str(&fields);
            let _ = write!(out, ",\"detail\":\"{}\",\"emit_seq\":{emit_seq}}}}}", event.detail);
        }
    }
}

/// A process-global overflow marker: a warning instant pinned at t=0 in
/// process `run`, so an evicted-events window is visible in the timeline
/// rather than silently absent.
fn push_overflow_warning(out: &mut String, first: &mut bool, run: u32, dropped: u64) {
    chrome_sep(out, first);
    push_common(
        out,
        &format!("ring overflow: {dropped} events evicted"),
        'i',
        0.0,
        run,
        0,
    );
    let _ = write!(out, ",\"s\":\"p\",\"args\":{{\"dropped\":{dropped}}}}}");
}

/// Render the merged trace in Chrome trace-event JSON, loadable in
/// `chrome://tracing` and <https://ui.perfetto.dev>. Ring overflow
/// surfaces as a process-scoped warning instant at t=0.
pub fn chrome_trace(merged: &MergedTelemetry) -> String {
    let mut out = String::with_capacity(merged.events.len() * 160 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;

    if merged.dropped > 0 {
        push_overflow_warning(&mut out, &mut first, 0, merged.dropped);
    }

    // thread_name metadata: one entry per (run, component) pair seen.
    let mut named: Vec<(u32, u32)> = Vec::new();
    for SweepEvent { run, event, .. } in &merged.events {
        let t = tid(event.who);
        if !named.contains(&(*run, t)) {
            named.push((*run, t));
            chrome_sep(&mut out, &mut first);
            push_common(&mut out, "thread_name", 'M', 0.0, *run, t);
            let _ = write!(out, ",\"args\":{{\"name\":\"{}\"}}}}", event.who);
        }
    }

    for SweepEvent { run, seq, event } in &merged.events {
        push_chrome_event(&mut out, &mut first, *run, *seq, event);
    }
    out.push_str("\n]}\n");
    out
}

/// Render a set of forensic captures as JSON Lines: one header object per
/// capture (label, score, call identity, event/drop counts), then its
/// events in emission order, with `run` = capture ordinal — so a single
/// file holds the full worst-call dossier and is still grep/jq-friendly.
pub fn flight_jsonl(captures: &[FlightCapture]) -> String {
    let mut out = String::new();
    for (ci, cap) in captures.iter().enumerate() {
        let _ = write!(out, "{{\"capture\":{ci},\"label\":\"");
        json_escape(&cap.label, &mut out);
        let _ = writeln!(
            out,
            "\",\"score\":{},\"seed\":{},\"index\":{},\"events\":{},\"dropped\":{}}}",
            cap.score,
            cap.seed,
            cap.index,
            cap.events.len(),
            cap.dropped
        );
        if cap.dropped > 0 {
            let _ = writeln!(
                out,
                "{{\"warning\":\"ring_overflow\",\"capture\":{ci},\"dropped\":{}}}",
                cap.dropped
            );
        }
        for (i, event) in cap.events.iter().enumerate() {
            push_jsonl_event(&mut out, ci as u32, cap.first_seq + i as u64, event);
        }
    }
    out
}

/// Render forensic captures in Chrome trace-event JSON: each capture is a
/// process (pid = capture ordinal, `process_name` = its label + score),
/// components are named threads within it, and ring overflow surfaces as
/// a warning instant — open in <https://ui.perfetto.dev> to walk a worst
/// call's full timeline.
pub fn flight_chrome_trace(captures: &[FlightCapture]) -> String {
    let n: usize = captures.iter().map(|c| c.events.len()).sum();
    let mut out = String::with_capacity(n * 160 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    for (ci, cap) in captures.iter().enumerate() {
        let pid = ci as u32;
        chrome_sep(&mut out, &mut first);
        push_common(&mut out, "process_name", 'M', 0.0, pid, 0);
        out.push_str(",\"args\":{\"name\":\"");
        json_escape(&cap.label, &mut out);
        let _ = write!(out, " (score {:.2})\"}}}}", cap.score);
        if cap.dropped > 0 {
            push_overflow_warning(&mut out, &mut first, pid, cap.dropped);
        }
        let mut named: Vec<u32> = Vec::new();
        for event in &cap.events {
            let t = tid(event.who);
            if !named.contains(&t) {
                named.push(t);
                chrome_sep(&mut out, &mut first);
                push_common(&mut out, "thread_name", 'M', 0.0, pid, t);
                let _ = write!(out, ",\"args\":{{\"name\":\"{}\"}}}}", event.who);
            }
        }
        for (i, event) in cap.events.iter().enumerate() {
            push_chrome_event(&mut out, &mut first, pid, cap.first_seq + i as u64, event);
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Render a metrics registry as an aligned text table; histograms show
/// count / mean / p50 / p90 / p99 / max.
pub fn metrics_table(metrics: &MetricsRegistry) -> String {
    let mut rows: Vec<[String; 3]> = Vec::with_capacity(metrics.len());
    for row in metrics.rows() {
        let value = match &row.value {
            MetricValue::Counter(n) => format!("{n}"),
            MetricValue::Gauge { sum, n } => {
                format!("{:.3}", if *n == 0 { 0.0 } else { sum / *n as f64 })
            }
            MetricValue::Histogram(h) => format!(
                "n={} mean={:.1} p50={} p90={} p99={} max={}",
                h.count(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
                h.max()
            ),
        };
        rows.push([row.who.to_string(), row.name.to_string(), value]);
    }
    let mut widths = [9usize, 6, 5]; // headers: component, metric, value
    for r in &rows {
        for (w, cell) in widths.iter_mut().zip(r.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<w0$}  {:<w1$}  value",
        "component",
        "metric",
        w0 = widths[0],
        w1 = widths[1]
    );
    let _ = writeln!(out, "{}", "-".repeat(widths[0] + widths[1] + widths[2] + 4));
    for r in &rows {
        let _ = writeln!(out, "{:<w0$}  {:<w1$}  {}", r[0], r[1], r[2], w0 = widths[0], w1 = widths[1]);
    }
    out
}

/// Render a full sweep report: metrics table plus profile and drop-count
/// footer — what `repro --metrics-out` writes.
pub fn sweep_report(merged: &MergedTelemetry) -> String {
    let mut out = metrics_table(&merged.metrics);
    out.push('\n');
    let _ = writeln!(out, "events: {} recorded, {} evicted", merged.events.len(), merged.dropped);
    if merged.dropped > 0 {
        let _ = writeln!(
            out,
            "warning: ring overflow — {} events evicted before export (raise the ring capacity)",
            merged.dropped
        );
    }
    let _ = writeln!(out, "profile: {}", profile_line(&merged.profile));
    out
}

fn profile_line(p: &PhaseProfile) -> String {
    p.summary()
}

/// Write a rendered artifact atomically: the text lands in
/// `path + ".tmp"` first and is renamed into place, so a crash (or a
/// full disk) mid-write leaves either the old artifact or none — never a
/// truncated one. Parent directories are created as needed. Errors are
/// propagated, not panicked: artifact IO failing must degrade the run
/// (skip the artifact, report the error), not kill it.
pub fn write_text_atomic(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::LogHistogram;
    use crate::telemetry::TelemetrySession;
    use crate::time::SimTime;
    use crate::trace::{DecisionKind, FaultEdge, TraceEvent};

    fn merged_fixture() -> MergedTelemetry {
        let events = vec![
            TraceEvent {
                at: SimTime::from_micros(100),
                kind: TraceKind::Enqueue,
                who: ComponentId::ap(0),
                detail: TraceDetail::Queue { seq: 1, depth: 2, cap: 64 },
            },
            TraceEvent {
                at: SimTime::from_micros(200),
                kind: TraceKind::TxStart,
                who: ComponentId::ap(0),
                detail: TraceDetail::Air { seq: 1, attempts: 2, dur_us: 850 },
            },
            TraceEvent {
                at: SimTime::from_micros(1050),
                kind: TraceKind::Delivery,
                who: ComponentId::client(),
                detail: TraceDetail::Seq(1),
            },
            TraceEvent {
                at: SimTime::from_micros(1100),
                kind: TraceKind::Decision,
                who: ComponentId::client(),
                detail: TraceDetail::Decision { kind: DecisionKind::MiddleboxStart, seq: 2 },
            },
            TraceEvent {
                at: SimTime::from_micros(1200),
                kind: TraceKind::Fault,
                who: ComponentId::world(),
                detail: TraceDetail::Fault { window: 0, edge: FaultEdge::Onset },
            },
        ];
        let mut metrics = MetricsRegistry::new();
        metrics.counter(ComponentId::ap(0), "drops", 3);
        metrics.gauge(ComponentId::tcp(), "cwnd", 7.0);
        let mut h = LogHistogram::new();
        h.record(5);
        h.record(900);
        metrics.histogram(ComponentId::ap(0), "queue_depth", &h);
        MergedTelemetry::from_single(TelemetrySession {
            events,
            metrics,
            ..TelemetrySession::default()
        })
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let m = merged_fixture();
        let out = jsonl(&m);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("\"kind\":\"enqueue\""));
        assert!(lines[0].contains("\"who\":\"ap:0\""));
        assert!(lines[0].contains("\"depth\":2"));
        assert!(lines[1].contains("\"dur_us\":850"));
        assert!(lines[3].contains("\"decision\":\"middlebox_start\""));
        assert!(lines[4].contains("\"kind\":\"fault\""));
        assert!(lines[4].contains("\"edge\":\"onset\""));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn chrome_trace_shape() {
        let m = merged_fixture();
        let out = chrome_trace(&m);
        assert!(out.starts_with("{\"displayTimeUnit\""));
        assert!(out.contains("\"traceEvents\":["));
        // Duration slice for the air exchange.
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"dur\":850"));
        // Counter track for queue depth.
        assert!(out.contains("\"ph\":\"C\""));
        // Thread name metadata for both components.
        assert!(out.contains("\"thread_name\""));
        assert!(out.contains("{\"name\":\"ap:0\"}"));
        assert!(out.contains("{\"name\":\"client\"}"));
        // Balanced braces/brackets — cheap structural sanity.
        let open = out.matches('{').count();
        let close = out.matches('}').count();
        assert_eq!(open, close);
        assert_eq!(out.matches('[').count(), out.matches(']').count());
    }

    #[test]
    fn metrics_table_lists_all_rows() {
        let m = merged_fixture();
        let table = metrics_table(&m.metrics);
        assert!(table.contains("drops"));
        assert!(table.contains("queue_depth"));
        assert!(table.contains("p90="));
        assert!(table.contains("cwnd"));
        assert!(table.contains("7.000"));
        let report = sweep_report(&m);
        assert!(report.contains("events: 5 recorded, 0 evicted"));
        assert!(report.contains("profile:"));
    }

    #[test]
    fn json_escaping() {
        let mut s = String::new();
        json_escape("a\"b\\c\nd", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn ring_overflow_is_surfaced_not_silent() {
        let mut m = merged_fixture();
        m.dropped = 17;

        let out = jsonl(&m);
        let first = out.lines().next().unwrap();
        assert_eq!(first, "{\"warning\":\"ring_overflow\",\"dropped\":17}");
        assert_eq!(out.lines().count(), 6, "warning line plus the 5 events");

        let chrome = chrome_trace(&m);
        assert!(chrome.contains("ring overflow: 17 events evicted"));
        assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());

        let report = sweep_report(&m);
        assert!(report.contains("events: 5 recorded, 17 evicted"));
        assert!(report.contains("warning: ring overflow"));

        // And with nothing dropped, none of the three mention overflow.
        let clean = merged_fixture();
        assert!(!jsonl(&clean).contains("ring_overflow"));
        assert!(!chrome_trace(&clean).contains("ring overflow"));
        assert!(!sweep_report(&clean).contains("warning"));
    }

    fn captures_fixture() -> Vec<FlightCapture> {
        let events = merged_fixture().events.into_iter().map(|e| e.event).collect::<Vec<_>>();
        vec![
            FlightCapture {
                label: "diversifi/call-000042".into(),
                score: 2.25,
                seed: 7,
                index: 42,
                first_seq: 0,
                dropped: 0,
                events: events.clone(),
            },
            FlightCapture {
                label: "primary-only/call-000007".into(),
                score: 2.5,
                seed: 7,
                index: 7,
                first_seq: 3,
                dropped: 9,
                events,
            },
        ]
    }

    #[test]
    fn flight_jsonl_headers_then_events() {
        let out = flight_jsonl(&captures_fixture());
        let lines: Vec<&str> = out.lines().collect();
        // capture 0: header + 5 events; capture 1: header + warning + 5.
        assert_eq!(lines.len(), 13);
        assert!(lines[0].contains("\"label\":\"diversifi/call-000042\""));
        assert!(lines[0].contains("\"score\":2.25"));
        assert!(lines[0].contains("\"dropped\":0"));
        assert!(lines[1].contains("\"run\":0"));
        assert!(lines[6].contains("\"label\":\"primary-only/call-000007\""));
        assert!(lines[7].contains("\"warning\":\"ring_overflow\""));
        // Second capture's ord continues from its first_seq.
        assert!(lines[8].contains("\"run\":1") && lines[8].contains("\"ord\":3"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn flight_chrome_trace_is_one_process_per_capture() {
        let out = flight_chrome_trace(&captures_fixture());
        assert!(out.contains("\"process_name\""));
        assert!(out.contains("diversifi/call-000042 (score 2.25)"));
        assert!(out.contains("primary-only/call-000007 (score 2.50)"));
        assert!(out.contains("ring overflow: 9 events evicted"));
        // Events of capture 1 carry pid 1.
        assert!(out.contains("\"pid\":1"));
        assert!(out.contains("\"ph\":\"X\""));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
        assert_eq!(out.matches('[').count(), out.matches(']').count());
    }

    #[test]
    fn write_text_atomic_creates_dirs_replaces_and_propagates_errors() {
        let dir = std::env::temp_dir()
            .join(format!("diversifi-export-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/artifact.json");
        write_text_atomic(&path, "{\"v\":1}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":1}");
        // Overwrite in place; no .tmp litter survives.
        write_text_atomic(&path, "{\"v\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        assert!(!dir.join("nested/artifact.json.tmp").exists());
        // A directory squatting on the temp path surfaces as Err, not a
        // panic (the full-disk / unwritable-path degradation contract).
        let blocked = dir.join("blocked.json");
        std::fs::create_dir_all(dir.join("blocked.json.tmp")).unwrap();
        assert!(write_text_atomic(&blocked, "x").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
