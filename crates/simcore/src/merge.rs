//! Loser-tree k-way merge of pre-sorted streams.
//!
//! The traced sweep entry points (`SweepRunner::run_indexed_traced`) used
//! to concatenate every run's event stream and `sort_unstable` the lot —
//! O(N log N) comparisons over N total events even though each per-run
//! stream is already sorted. A [loser tree] exploits that: one comparison
//! path of length ⌈log₂ k⌉ per emitted element, where k is the number of
//! streams, for O(N log k) total. For the 4-run telemetry bench that is
//! log₂ 4 = 2 comparisons per event instead of log₂ 120 000 ≈ 17.
//!
//! The tree stores *losers* at internal nodes and the current overall
//! winner at the root, so replacing the winner's head only replays the
//! winner's leaf-to-root path instead of re-running whole sibling
//! subtrees. Ties break toward the lower stream index, which makes the
//! merge stable; callers that need a deterministic total order (the
//! telemetry merge keys on `(sim-time, run, seq)`, which is unique) get
//! it regardless.
//!
//! [loser tree]: https://en.wikipedia.org/wiki/K-way_merge_algorithm#Tournament_Tree

/// Merge `streams` — each individually sorted (non-decreasing) under
/// `key` — into one sorted vector.
///
/// The caller asserts sortedness; feeding an unsorted stream produces an
/// arbitrary interleaving (the telemetry layer checks sortedness on
/// absorb and falls back to a full sort instead of calling this). Ties
/// across streams resolve toward the lower stream index; within a stream
/// the original order is kept.
pub fn merge_sorted_by_key<T, K, F>(streams: Vec<Vec<T>>, key: F) -> Vec<T>
where
    K: Ord,
    F: Fn(&T) -> K,
{
    let k = streams.len();
    if k == 0 {
        return Vec::new();
    }
    if k == 1 {
        return streams.into_iter().next().expect("k == 1");
    }

    let total: usize = streams.iter().map(Vec::len).sum();
    let mut out: Vec<T> = Vec::with_capacity(total);
    let mut iters: Vec<std::vec::IntoIter<T>> =
        streams.into_iter().map(Vec::into_iter).collect();
    let mut heads: Vec<Option<T>> = iters.iter_mut().map(Iterator::next).collect();

    // Does leaf `a`'s head beat (sort strictly before) leaf `b`'s?
    // Exhausted streams rank as +∞ so they can never win; the SENTINEL
    // pseudo-leaf used during construction loses to everything.
    const SENTINEL: usize = usize::MAX;
    let beats = |heads: &[Option<T>], a: usize, b: usize| -> bool {
        if a == SENTINEL {
            return false;
        }
        if b == SENTINEL {
            return true;
        }
        match (&heads[a], &heads[b]) {
            (Some(x), Some(y)) => (key(x), a) < (key(y), b),
            (Some(_), None) => true,
            (None, _) => false,
        }
    };

    // Implicit layout: leaf `s` sits at position `k + s`; positions
    // `1..k` are internal matches (position `p`'s children are `2p` and
    // `2p+1`, its parent `p/2`). `tree[1..k]` hold each match's loser,
    // `tree[0]` the overall winner. Build bottom-up as one explicit
    // tournament: compute each match's winner and store its loser.
    let mut tree: Vec<usize> = vec![SENTINEL; k];
    let mut winner_at: Vec<usize> = vec![SENTINEL; 2 * k];
    for (s, slot) in winner_at[k..].iter_mut().enumerate() {
        *slot = s;
    }
    for pos in (1..k).rev() {
        let a = winner_at[2 * pos];
        let b = winner_at[2 * pos + 1];
        let (w, l) = if beats(&heads, a, b) { (a, b) } else { (b, a) };
        winner_at[pos] = w;
        tree[pos] = l;
    }
    tree[0] = winner_at[1];

    loop {
        let w = tree[0];
        let Some(item) = heads[w].take() else {
            break; // winner exhausted ⇒ every stream is exhausted
        };
        out.push(item);
        heads[w] = iters[w].next();
        // Replay only the winner's path to the root.
        let mut cur = w;
        let mut node = (w + k) / 2;
        while node >= 1 {
            if beats(&heads, tree[node], cur) {
                std::mem::swap(&mut tree[node], &mut cur);
            }
            node /= 2;
        }
        tree[0] = cur;
    }
    out
}

/// Is `items` sorted (non-decreasing) under `key`? Used by callers to
/// decide between the merge fast path and a full-sort fallback.
pub fn is_sorted_by_key<T, K, F>(items: &[T], key: F) -> bool
where
    K: Ord,
    F: Fn(&T) -> K,
{
    items.windows(2).all(|w| key(&w[0]) <= key(&w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single_stream() {
        let empty: Vec<Vec<u32>> = vec![];
        assert!(merge_sorted_by_key(empty, |&x| x).is_empty());
        assert_eq!(merge_sorted_by_key(vec![vec![3u32, 5, 9]], |&x| x), vec![3, 5, 9]);
        assert_eq!(merge_sorted_by_key(vec![vec![], Vec::<u32>::new()], |&x| x), Vec::<u32>::new());
    }

    #[test]
    fn merges_disjoint_and_interleaved() {
        let got = merge_sorted_by_key(vec![vec![1u32, 4, 7], vec![2, 5, 8], vec![3, 6, 9]], |&x| x);
        assert_eq!(got, (1..=9).collect::<Vec<_>>());
        let got = merge_sorted_by_key(vec![vec![10u32, 11, 12], vec![1, 2, 3]], |&x| x);
        assert_eq!(got, vec![1, 2, 3, 10, 11, 12]);
    }

    #[test]
    fn ties_break_toward_lower_stream_index() {
        // Tag values with a stream marker the key ignores.
        let a = vec![(5u32, 'a'), (7, 'a')];
        let b = vec![(5u32, 'b'), (5, 'b')];
        let got = merge_sorted_by_key(vec![a, b], |&(x, _)| x);
        assert_eq!(got, vec![(5, 'a'), (5, 'b'), (5, 'b'), (7, 'a')]);
    }

    #[test]
    fn handles_mixed_empty_streams_and_uneven_lengths() {
        let got = merge_sorted_by_key(
            vec![vec![], vec![2u32], vec![], vec![1, 1, 1, 9], vec![0]],
            |&x| x,
        );
        assert_eq!(got, vec![0, 1, 1, 1, 2, 9]);
    }

    #[test]
    fn matches_sort_on_random_streams() {
        // Deterministic pseudo-random differential vs the library sort.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..50 {
            let k = 1 + (next() % 9) as usize;
            let mut streams: Vec<Vec<u64>> = Vec::new();
            let mut all: Vec<u64> = Vec::new();
            for _ in 0..k {
                let len = (next() % 40) as usize;
                let mut s: Vec<u64> = (0..len).map(|_| next() % 32).collect();
                s.sort_unstable();
                all.extend(&s);
                streams.push(s);
            }
            all.sort_unstable();
            let got = merge_sorted_by_key(streams, |&x| x);
            assert_eq!(got, all, "trial {trial}");
        }
    }

    #[test]
    fn sortedness_probe() {
        assert!(is_sorted_by_key(&[1u32, 1, 2, 3], |&x| x));
        assert!(!is_sorted_by_key(&[1u32, 3, 2], |&x| x));
        assert!(is_sorted_by_key(&Vec::<u32>::new(), |&x| x));
    }
}
