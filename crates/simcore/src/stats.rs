//! Statistics toolkit shared by all experiment code: summaries, percentiles,
//! empirical CDFs, histograms, and correlation — everything needed to emit
//! the paper's tables and figures.

use serde::Serialize;

/// Running summary (count / mean / variance via Welford, min / max).
#[derive(Clone, Debug, Default, Serialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add every value in an iterator.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.add(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// An empirical CDF over a finite sample, as used for every "CDF of loss
/// rate over worst 5-second period" figure in the paper.
#[derive(Clone, Debug, Serialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a sample (NaNs are rejected with a panic: a NaN in a loss
    /// rate means a bug upstream, not a data point).
    pub fn new(mut sample: Vec<f64>) -> Self {
        assert!(sample.iter().all(|x| !x.is_nan()), "ECDF sample contains NaN");
        sample.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ecdf { sorted: sample }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of the sample ≤ `x`.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|v| *v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`q` in `[0,1]`) using nearest-rank on the sorted
    /// sample. `quantile(0.9)` is the paper's "90th %ile".
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        assert!(!self.sorted.is_empty(), "quantile of empty sample");
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// The underlying sorted sample.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluate the CDF on a fixed grid of `points` x-values spanning
    /// `[lo, hi]` — the series plotted in the paper's figures.
    pub fn series(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2 && hi > lo);
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.at(x))
            })
            .collect()
    }
}

/// The `q`-quantile (`q` in `[0,1]`) of an *unsorted* sample, in place and
/// without allocating: nearest-rank selection via `select_nth_unstable`.
///
/// Returns exactly the value [`Ecdf::quantile`] would return after
/// `Ecdf::new(xs.to_vec())` — the nearest-rank index is computed the same
/// way — but in O(n) and reusing the caller's buffer, which is the point:
/// sweep workers feed their scratch buffer here instead of building a
/// sorted [`Ecdf`] per quantile. The slice is reordered (partially sorted
/// around the selected rank); NaNs panic, as in [`Ecdf::new`].
pub fn quantile_unsorted(xs: &mut [f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!(xs.iter().all(|x| !x.is_nan()), "quantile sample contains NaN");
    let n = xs.len();
    let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
    *xs.select_nth_unstable_by(idx, |a, b| a.partial_cmp(b).unwrap()).1
}

/// Integer-bucketed histogram, e.g. the paper's burst-length distributions
/// (Figures 5 and 9) with buckets 1..=10 and ">10".
#[derive(Clone, Debug, Serialize)]
pub struct BucketHistogram {
    /// Counts for values `1..=max_bucket`.
    counts: Vec<u64>,
    /// Count of values strictly greater than `max_bucket`.
    overflow: u64,
    max_bucket: usize,
    total_weight: u64,
}

impl BucketHistogram {
    /// Histogram with explicit buckets `1..=max_bucket` plus an overflow
    /// bucket (">max_bucket").
    pub fn new(max_bucket: usize) -> Self {
        assert!(max_bucket >= 1);
        BucketHistogram { counts: vec![0; max_bucket], overflow: 0, max_bucket, total_weight: 0 }
    }

    /// Record one occurrence of `value` (values < 1 are ignored — a burst of
    /// length zero is not a burst).
    pub fn add(&mut self, value: usize) {
        self.add_weighted(value, 1);
    }

    /// Record `weight` occurrences of `value`.
    pub fn add_weighted(&mut self, value: usize, weight: u64) {
        if value == 0 {
            return;
        }
        if value <= self.max_bucket {
            self.counts[value - 1] += weight;
        } else {
            self.overflow += weight;
        }
        self.total_weight += weight;
    }

    /// Count in bucket `value` (1-based). Panics outside `1..=max_bucket`.
    pub fn count(&self, value: usize) -> u64 {
        assert!((1..=self.max_bucket).contains(&value));
        self.counts[value - 1]
    }

    /// Count of values above `max_bucket`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded weight.
    pub fn total(&self) -> u64 {
        self.total_weight
    }

    /// Average count per call when the histogram aggregates `n_calls` calls:
    /// the y-axis of the paper's burst figures.
    pub fn per_call_series(&self, n_calls: u64) -> Vec<(String, f64)> {
        assert!(n_calls > 0);
        let mut out: Vec<(String, f64)> = (1..=self.max_bucket)
            .map(|b| (b.to_string(), self.counts[b - 1] as f64 / n_calls as f64))
            .collect();
        out.push((format!(">{}", self.max_bucket), self.overflow as f64 / n_calls as f64));
        out
    }
}

/// Pearson correlation coefficient of two equal-length series.
/// Returns 0 when either series is constant (no linear relation measurable).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        let da = a[i] - ma;
        let db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Autocorrelation of a binary/real series at integer `lag` ≥ 0
/// (Pearson correlation of the series with itself shifted by `lag`).
pub fn autocorrelation(series: &[f64], lag: usize) -> f64 {
    if lag == 0 {
        return 1.0;
    }
    if series.len() <= lag + 1 {
        return 0.0;
    }
    pearson(&series[..series.len() - lag], &series[lag..])
}

/// Cross-correlation of two series at integer `lag` ≥ 0 — correlation of
/// `a[t]` with `b[t+lag]`.
pub fn cross_correlation(a: &[f64], b: &[f64], lag: usize) -> f64 {
    assert_eq!(a.len(), b.len(), "cross_correlation: length mismatch");
    if a.len() <= lag + 1 {
        return 0.0;
    }
    pearson(&a[..a.len() - lag], &b[lag..])
}

/// Mean of a slice (0 if empty) — small convenience used everywhere in the
/// reporting code.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn ecdf_quantiles() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(e.quantile(0.9), 90.0);
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(1.0), 100.0);
        assert_eq!(e.quantile(0.0), 1.0);
    }

    #[test]
    fn ecdf_at() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 10.0]);
        assert_eq!(e.at(0.5), 0.0);
        assert_eq!(e.at(2.0), 0.75);
        assert_eq!(e.at(100.0), 1.0);
    }

    #[test]
    fn ecdf_series_monotone() {
        let e = Ecdf::new(vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let s = e.series(0.0, 10.0, 21);
        assert_eq!(s.len(), 21);
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be monotone");
        }
        assert_eq!(s.last().unwrap().1, 1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn ecdf_rejects_nan() {
        Ecdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn quantile_unsorted_matches_ecdf_exactly() {
        // Deterministic pseudo-random sample with duplicates and negatives.
        let sample: Vec<f64> = (0..257)
            .map(|i| (((i * 2654435761u64 % 1000) as f64) - 500.0) / 7.0)
            .collect();
        let e = Ecdf::new(sample.clone());
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let mut buf = sample.clone();
            let got = quantile_unsorted(&mut buf, q);
            assert_eq!(got.to_bits(), e.quantile(q).to_bits(), "q={q}");
        }
        // Singleton and small samples hit the clamp path.
        for n in 1..=5usize {
            let xs: Vec<f64> = (0..n).map(|i| i as f64 * 3.0).collect();
            let e = Ecdf::new(xs.clone());
            for q in [0.0, 0.5, 0.9, 1.0] {
                let mut buf = xs.clone();
                assert_eq!(quantile_unsorted(&mut buf, q), e.quantile(q), "n={n} q={q}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn quantile_unsorted_rejects_nan() {
        quantile_unsorted(&mut [1.0, f64::NAN], 0.5);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = BucketHistogram::new(10);
        h.add(1);
        h.add(1);
        h.add(5);
        h.add(11);
        h.add(400);
        h.add(0); // ignored
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_per_call_series() {
        let mut h = BucketHistogram::new(3);
        h.add_weighted(1, 10);
        h.add_weighted(4, 2);
        let s = h.per_call_series(2);
        assert_eq!(s.len(), 4);
        assert_eq!(s[0], ("1".to_string(), 5.0));
        assert_eq!(s[3], (">3".to_string(), 1.0));
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&a, &b), 0.0);
    }

    #[test]
    fn autocorrelation_of_alternating_series() {
        let s: Vec<f64> = (0..100).map(|i| (i % 2) as f64).collect();
        assert!((autocorrelation(&s, 1) + 1.0).abs() < 0.05);
        assert!((autocorrelation(&s, 2) - 1.0).abs() < 0.05);
        assert_eq!(autocorrelation(&s, 0), 1.0);
    }

    #[test]
    fn cross_correlation_of_shifted_copy() {
        let a: Vec<f64> = (0..200).map(|i| ((i / 7) % 2) as f64).collect();
        let mut b = vec![0.0; 200];
        b[3..].copy_from_slice(&a[..197]);
        // b[t] = a[t-3]: a[t] matches b[t+3], so correlation peaks at lag 3.
        let c3 = cross_correlation(&a, &b, 3);
        let c0 = cross_correlation(&a, &b, 0);
        assert!(c3 > 0.9, "c3={c3}");
        assert!(c3 > c0);
    }

    #[test]
    fn short_series_edge_cases() {
        assert_eq!(autocorrelation(&[1.0], 1), 0.0);
        assert_eq!(cross_correlation(&[1.0], &[2.0], 1), 0.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
