//! Deterministic parallel sweep execution.
//!
//! Every batch experiment in the workspace — corpus-scale call rating,
//! multi-world fleets, ablations, population studies — is a map over
//! *independent* simulation tasks: task `i` derives its own RNG streams
//! from a [`SeedFactory`] sub-stream, runs a `World`, and yields a record.
//! [`SweepRunner`] is the single execution substrate for those maps.
//!
//! # Determinism contract
//!
//! `run`/`run_indexed`/`run_seeded` guarantee **bit-identical output
//! regardless of thread count**, because:
//!
//! 1. every task is a pure function of its index and input — RNG state is
//!    never shared across tasks (each derives `seeds.subfactory(label, i)`);
//! 2. results are written into a pre-sized slot vector at the task's own
//!    index, so output order is input order, not completion order;
//! 3. the scheduler only decides *which thread* runs a task, never what
//!    the task computes.
//!
//! # Execution model
//!
//! Workers claim task indices from a shared atomic counter (work-stealing
//! by next-index claim, so a slow task never stalls the queue behind it)
//! and publish results through per-slot [`OnceLock`]s — there is no mutex
//! around the result vector and no cross-thread ordering requirement
//! beyond the scope join. With one worker (or one task) the runner
//! degrades to a plain inline loop with zero thread overhead.

use crate::rng::SeedFactory;
use crate::telemetry::{self, MergedTelemetry};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Cap on auto-detected workers; sweeps are memory-light but a fleet of
/// `World`s past this point is scheduler churn, not speedup.
const MAX_AUTO_THREADS: usize = 16;

/// Hardware parallelism, clamped to [1, `MAX_AUTO_THREADS`].
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_AUTO_THREADS)
}

/// A deterministic parallel executor for independent simulation tasks.
///
/// See the [module docs](self) for the determinism contract.
#[derive(Clone, Copy, Debug)]
pub struct SweepRunner {
    threads: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::available()
    }
}

impl SweepRunner {
    /// A runner with an explicit worker count; `0` means auto-detect
    /// (`available_parallelism`, capped at 16).
    pub fn new(threads: usize) -> SweepRunner {
        let threads = if threads == 0 { default_parallelism() } else { threads };
        SweepRunner { threads }
    }

    /// A runner using all available hardware parallelism.
    pub fn available() -> SweepRunner {
        SweepRunner::new(0)
    }

    /// The serial reference runner (one worker, inline execution).
    pub fn serial() -> SweepRunner {
        SweepRunner { threads: 1 }
    }

    /// The worker count this runner will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Map `f` over `0..n`, returning results in index order.
    ///
    /// `f` must be a pure function of the index for the determinism
    /// contract to hold; a panic in any task propagates after all workers
    /// stop claiming new tasks.
    pub fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send + Sync,
        F: Fn(usize) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }

        let slots: Vec<OnceLock<R>> = (0..n).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // Each index is claimed exactly once, so the slot
                        // is always empty here.
                        assert!(slots[i].set(f(i)).is_ok(), "sweep slot {i} written twice");
                    })
                })
                .collect();
            for handle in handles {
                // Re-raise a task panic with its original payload instead
                // of scope's generic "a scoped thread panicked".
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner().unwrap_or_else(|| panic!("sweep task {i} did not complete"))
            })
            .collect()
    }

    /// Like [`run_indexed`](Self::run_indexed), but hands every task a
    /// mutable per-worker scratch value built by `init` (one per worker
    /// thread, created on that thread).
    ///
    /// This is the zero-alloc hook: workers reuse buffers, caches and
    /// arenas across the tasks they claim instead of allocating per task.
    /// The determinism contract still requires `f(i, scratch)` to return a
    /// value independent of the scratch's *history* — scratch state may
    /// only serve as a buffer or a cache of pure functions, never carry
    /// task-to-task information into results.
    pub fn run_indexed_with<S, R, I, F>(&self, n: usize, init: I, f: F) -> Vec<R>
    where
        R: Send + Sync,
        I: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n);
        if workers <= 1 {
            let mut scratch = init();
            return (0..n).map(|i| f(i, &mut scratch)).collect();
        }

        let slots: Vec<OnceLock<R>> = (0..n).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut scratch = init();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            assert!(
                                slots[i].set(f(i, &mut scratch)).is_ok(),
                                "sweep slot {i} written twice"
                            );
                        }
                    })
                })
                .collect();
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner().unwrap_or_else(|| panic!("sweep task {i} did not complete"))
            })
            .collect()
    }

    /// Like [`run_indexed`](Self::run_indexed), but wraps every task in a
    /// telemetry session (a per-worker bounded ring of `capacity` events
    /// plus a metrics snapshot) and deterministically merges the per-run
    /// captures by `(sim-time, run-index, seq)`.
    ///
    /// Because a task's session lives on whichever worker thread claimed
    /// it and each run's event stream is a pure function of the run, the
    /// merged trace is bit-identical at any thread count — the same
    /// contract as the results themselves. When telemetry is compiled out
    /// ([`telemetry::TRACE_COMPILED`] is false) this is `run_indexed` plus
    /// an empty [`MergedTelemetry`].
    ///
    /// Must not be called while a telemetry session is active on the
    /// calling thread: the serial path runs tasks inline and would
    /// clobber it.
    pub fn run_indexed_traced<R, F>(&self, n: usize, capacity: usize, f: F) -> (Vec<R>, MergedTelemetry)
    where
        R: Send + Sync,
        F: Fn(usize) -> R + Sync,
    {
        debug_assert!(
            !telemetry::active(),
            "run_indexed_traced would clobber the active telemetry session"
        );
        let out = self.run_indexed_with(n, || (), |i, _scratch: &mut ()| {
            telemetry::begin(capacity);
            let r = f(i);
            (r, telemetry::end())
        });
        let mut merged = MergedTelemetry::default();
        let mut results = Vec::with_capacity(out.len());
        for (run, (r, session)) in out.into_iter().enumerate() {
            results.push(r);
            merged.absorb(run as u32, session);
        }
        merged.finish();
        (results, merged)
    }

    /// Traced variant of [`run_with`](Self::run_with): per-worker scratch
    /// *and* a telemetry session per task, merged deterministically. See
    /// [`run_indexed_traced`](Self::run_indexed_traced) for the contract.
    pub fn run_with_traced<T, S, R, I, F>(
        &self,
        tasks: &[T],
        capacity: usize,
        init: I,
        f: F,
    ) -> (Vec<R>, MergedTelemetry)
    where
        T: Sync,
        R: Send + Sync,
        I: Fn() -> S + Sync,
        F: Fn(usize, &T, &mut S) -> R + Sync,
    {
        debug_assert!(
            !telemetry::active(),
            "run_with_traced would clobber the active telemetry session"
        );
        let out = self.run_indexed_with(tasks.len(), init, |i, scratch| {
            telemetry::begin(capacity);
            let r = f(i, &tasks[i], scratch);
            (r, telemetry::end())
        });
        let mut merged = MergedTelemetry::default();
        let mut results = Vec::with_capacity(out.len());
        for (run, (r, session)) in out.into_iter().enumerate() {
            results.push(r);
            merged.absorb(run as u32, session);
        }
        merged.finish();
        (results, merged)
    }

    /// Map `f` over an indexed task slice with a per-worker scratch value;
    /// see [`run_indexed_with`](Self::run_indexed_with).
    pub fn run_with<T, S, R, I, F>(&self, tasks: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send + Sync,
        I: Fn() -> S + Sync,
        F: Fn(usize, &T, &mut S) -> R + Sync,
    {
        self.run_indexed_with(tasks.len(), init, |i, scratch| f(i, &tasks[i], scratch))
    }

    /// Map `f` over an indexed task slice, returning results in task order.
    pub fn run<T, R, F>(&self, tasks: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send + Sync,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run_indexed(tasks.len(), |i| f(i, &tasks[i]))
    }

    /// Map `f` over an indexed task slice, handing task `i` its own
    /// deterministic seed sub-stream `seeds.subfactory(label, i)`.
    ///
    /// This is the canonical shape for simulation sweeps: the sub-factory
    /// derivation is what makes results independent of worker count.
    pub fn run_seeded<T, R, F>(&self, seeds: &SeedFactory, label: &str, tasks: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send + Sync,
        F: Fn(usize, &T, SeedFactory) -> R + Sync,
    {
        self.run(tasks, |i, task| f(i, task, seeds.subfactory(label, i as u64)))
    }

    /// Like [`run_indexed`](Self::run_indexed) but with a per-index seed
    /// sub-stream, for sweeps defined by a count rather than a task list.
    pub fn run_seeded_indexed<R, F>(&self, seeds: &SeedFactory, label: &str, n: usize, f: F) -> Vec<R>
    where
        R: Send + Sync,
        F: Fn(usize, SeedFactory) -> R + Sync,
    {
        self.run_indexed(n, |i| f(i, seeds.subfactory(label, i as u64)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic, seed-dependent stand-in for a simulation task.
    fn fake_sim(i: usize, seeds: &SeedFactory) -> Vec<u64> {
        let mut rng = seeds.stream("work", i as u64);
        (0..16).map(|_| rng.range_u64(0, 1 << 48)).collect()
    }

    #[test]
    fn results_are_in_task_order() {
        let out = SweepRunner::new(4).run_indexed(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let seeds = SeedFactory::new(0xDEAD);
        let reference: Vec<Vec<u64>> = (0..33)
            .map(|i| fake_sim(i, &seeds.subfactory("task", i as u64)))
            .collect();
        for threads in [1, 2, 3, 8] {
            let got = SweepRunner::new(threads).run_seeded_indexed(
                &seeds,
                "task",
                33,
                |i, sub| fake_sim(i, &sub),
            );
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn run_over_slice_passes_matching_task() {
        let tasks: Vec<u64> = (0..57).map(|i| i * 7).collect();
        let out = SweepRunner::new(8).run(&tasks, |i, &t| (i as u64, t));
        for (i, (idx, t)) in out.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*t, (i as u64) * 7);
        }
    }

    #[test]
    fn scratch_runner_is_thread_count_invariant() {
        let seeds = SeedFactory::new(0xBEEF);
        let reference: Vec<Vec<u64>> = (0..29)
            .map(|i| fake_sim(i, &seeds.subfactory("task", i as u64)))
            .collect();
        for threads in [1, 2, 3, 8] {
            // Scratch reuses a buffer across tasks; output must not change.
            let got = SweepRunner::new(threads).run_indexed_with(
                29,
                Vec::<u64>::new,
                |i, buf| {
                    buf.clear();
                    buf.extend(fake_sim(i, &seeds.subfactory("task", i as u64)));
                    buf.clone()
                },
            );
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn scratch_is_created_per_worker_not_per_task() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let runner = SweepRunner::new(4);
        let out = runner.run_indexed_with(
            64,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |i, _| i,
        );
        assert_eq!(out.len(), 64);
        let created = inits.load(Ordering::Relaxed);
        assert!(created <= 4, "expected at most one scratch per worker, got {created}");
    }

    #[test]
    fn empty_and_singleton_sweeps() {
        let out: Vec<u32> = SweepRunner::available().run_indexed(0, |_| unreachable!());
        assert!(out.is_empty());
        let one = SweepRunner::available().run_indexed(1, |i| i + 41);
        assert_eq!(one, vec![41]);
    }

    #[test]
    fn zero_threads_means_auto() {
        let r = SweepRunner::new(0);
        assert!(r.threads() >= 1);
        assert_eq!(SweepRunner::serial().threads(), 1);
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let out = SweepRunner::new(16).run_indexed(3, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    /// A fake task that emits a deterministic event pattern: run `i`
    /// emits `i + 1` deliveries at staggered times, so runs interleave in
    /// the merged timeline.
    fn traced_task(i: usize) -> usize {
        use crate::trace::{ComponentId, TraceDetail, TraceKind};
        use crate::SimTime;
        for k in 0..=i as u64 {
            crate::trace_event!(
                SimTime::from_micros(10 * k + i as u64),
                TraceKind::Delivery,
                ComponentId::client(),
                TraceDetail::Seq(k)
            );
        }
        crate::telemetry::with_metrics(|m| {
            m.counter(crate::trace::ComponentId::client(), "emitted", i as u64 + 1)
        });
        i
    }

    #[test]
    fn traced_merge_is_thread_count_invariant() {
        if !crate::telemetry::TRACE_COMPILED {
            return;
        }
        let (ref_results, ref_merged) = SweepRunner::serial().run_indexed_traced(9, 64, traced_task);
        assert_eq!(ref_results, (0..9).collect::<Vec<_>>());
        assert_eq!(ref_merged.events.len(), (1..=9).sum::<usize>());
        // Merge order: (sim-time, run, seq), so equal-time events from
        // different runs are ordered by run index.
        for w in ref_merged.events.windows(2) {
            assert!(
                (w[0].event.at, w[0].run, w[0].seq) < (w[1].event.at, w[1].run, w[1].seq),
                "merge order violated"
            );
        }
        match ref_merged.metrics.get(crate::trace::ComponentId::client(), "emitted") {
            Some(crate::metrics::MetricValue::Counter(n)) => assert_eq!(*n, (1..=9).sum::<u64>()),
            other => panic!("{other:?}"),
        }
        for threads in [2, 4, 8] {
            let (results, merged) = SweepRunner::new(threads).run_indexed_traced(9, 64, traced_task);
            assert_eq!(results, ref_results, "threads={threads}");
            assert_eq!(merged.events, ref_merged.events, "threads={threads}");
            assert_eq!(merged.dropped, ref_merged.dropped);
        }
    }

    #[test]
    fn traced_runner_reports_ring_eviction() {
        if !crate::telemetry::TRACE_COMPILED {
            return;
        }
        // Capacity 2 with runs emitting up to 6 events: the merged trace
        // keeps each run's suffix and counts the evictions.
        let (_, merged) = SweepRunner::new(3).run_indexed_traced(6, 2, traced_task);
        let total: u64 = (1..=6).sum();
        let kept = merged.events.len() as u64;
        assert_eq!(kept + merged.dropped, total);
        assert_eq!(kept, 1 + 2 + 2 + 2 + 2 + 2);
        // Surviving events are each run's *last* emissions.
        for e in &merged.events {
            let run_total = e.run as u64 + 1;
            assert!(e.seq + 2 >= run_total, "run {} kept seq {}", e.run, e.seq);
        }
    }

    #[test]
    fn run_with_traced_combines_scratch_and_sessions() {
        if !crate::telemetry::TRACE_COMPILED {
            return;
        }
        let tasks: Vec<u64> = (0..7).map(|i| i * 3).collect();
        let (results, merged) = SweepRunner::new(4).run_with_traced(
            &tasks,
            16,
            Vec::<u64>::new,
            |i, &t, buf| {
                buf.clear();
                buf.push(t);
                traced_task(i);
                buf[0]
            },
        );
        assert_eq!(results, tasks);
        assert_eq!(merged.events.len(), (1..=7).sum::<usize>());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn task_panic_propagates() {
        SweepRunner::new(2).run_indexed(8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
