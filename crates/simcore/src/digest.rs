//! Mergeable shard digests for constant-memory campaign aggregation.
//!
//! A million-call campaign cannot materialise per-call records the way
//! `Vec`-returning sweeps do — it folds every call into a [`ShardDigest`]:
//! a fixed set of named channels, each one of
//!
//! - a **counter** (`u64`),
//! - a **summary** (Welford mean/variance plus min/max),
//! - a **histogram** (the half-octave [`LogHistogram`]),
//! - a **sketch** (a deterministic multi-level quantile sketch,
//!   [`QuantileSketch`]).
//!
//! Digests are *mergeable*: shard digests combine pairwise into the
//! campaign digest with no loss beyond each channel's own approximation,
//! and the merge is a pure function of the operand order, so a campaign
//! aggregated at any thread count — or resumed from checkpointed shard
//! digests — produces bit-identical results as long as shards are merged
//! in index order (which [`crate::campaign`] guarantees).
//!
//! Channel layout is fixed up front by a [`DigestSchema`]: folding code
//! holds `ChannelId`s (plain indices), so the per-call hot path is an
//! array index away from its accumulator — no string hashing per call.
//!
//! Everything serialises to the vendored `serde` value tree with exact
//! round-tripping (floats are finite by construction and print in
//! shortest-round-trip form), which is what checkpoint/resume relies on.

use serde::{Deserialize, Serialize, Value};

use crate::metrics::LogHistogram;
use crate::stats::quantile_unsorted;

/// Default base capacity of a [`QuantileSketch`] level (items per level
/// before compaction). With `k = 256` the sketch answers quantiles of a
/// million-sample stream within a fraction of a percent of rank while
/// holding at most a few thousand values.
pub const SKETCH_K: usize = 256;

/// A deterministic, mergeable streaming quantile sketch.
///
/// Classic multi-level compaction (GK/KLL family) with one twist: the
/// compaction offset alternates deterministically (per-level compaction
/// parity) instead of being drawn at random, so inserting the same stream
/// — or merging the same digests in the same order — always yields the
/// same sketch, bit for bit. Level `i` stores items of weight `2^i`; a
/// level past capacity is sorted and every other item is promoted.
///
/// While fewer than `2k` items have been inserted the sketch has never
/// compacted and answers **exactly**, matching
/// [`quantile_unsorted`] bit for bit — the property the
/// campaign smoke tests pin.
#[derive(Clone, Debug)]
pub struct QuantileSketch {
    k: usize,
    count: u64,
    /// Per-level compaction parities (deterministic offset alternation).
    parity: Vec<u64>,
    /// `levels[i]` holds items of weight `2^i`.
    levels: Vec<Vec<f64>>,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new(SKETCH_K)
    }
}

impl QuantileSketch {
    /// An empty sketch with level capacity `2k`.
    pub fn new(k: usize) -> QuantileSketch {
        assert!(k >= 2, "sketch capacity too small");
        QuantileSketch { k, count: 0, parity: vec![0], levels: vec![Vec::new()] }
    }

    /// Number of items inserted.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Total values currently retained (the memory bound: `O(k log n/k)`).
    pub fn retained(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Insert one observation. Non-finite values are rejected (they would
    /// break both ordering and checkpoint serialisation); `-0.0` is
    /// normalised to `0.0` so exactness pins are bit-stable.
    #[inline]
    pub fn insert(&mut self, x: f64) {
        assert!(x.is_finite(), "QuantileSketch::insert: non-finite value {x}");
        let x = if x == 0.0 { 0.0 } else { x };
        self.levels[0].push(x);
        self.count += 1;
        if self.levels[0].len() > 2 * self.k {
            self.compact_from(0);
        }
    }

    fn compact_from(&mut self, start: usize) {
        let mut i = start;
        while i < self.levels.len() && self.levels[i].len() > 2 * self.k {
            self.levels[i].sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
            let offset = (self.parity[i] & 1) as usize;
            self.parity[i] += 1;
            let promoted: Vec<f64> =
                self.levels[i].iter().copied().skip(offset).step_by(2).collect();
            self.levels[i].clear();
            self.levels[i].shrink_to(2 * self.k + 1);
            if i + 1 == self.levels.len() {
                self.levels.push(Vec::new());
                self.parity.push(0);
            }
            self.levels[i + 1].extend(promoted);
            i += 1;
        }
    }

    /// Merge another sketch in (operand order matters for bit-identity;
    /// callers merge shards in index order).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(self.k, other.k, "merging sketches of different capacity");
        while self.levels.len() < other.levels.len() {
            self.levels.push(Vec::new());
            self.parity.push(0);
        }
        for (i, lvl) in other.levels.iter().enumerate() {
            self.levels[i].extend_from_slice(lvl);
        }
        for (p, q) in self.parity.iter_mut().zip(other.parity.iter()) {
            *p += q;
        }
        self.count += other.count;
        self.compact_from(0);
    }

    /// The nearest-rank quantile estimate.
    ///
    /// Exact (bit-identical to [`quantile_unsorted`]) while the sketch has
    /// never compacted, i.e. while `count ≤ 2k`; approximate afterwards.
    /// Panics on an empty sketch, like its exact counterpart.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(self.count > 0, "quantile of empty sketch");
        if self.levels.len() == 1 {
            // Never compacted: answer on the raw sample, through the exact
            // routine itself so the two can never drift.
            let mut buf = self.levels[0].clone();
            return quantile_unsorted(&mut buf, q);
        }
        let mut weighted: Vec<(f64, u64)> = Vec::with_capacity(self.retained());
        for (i, lvl) in self.levels.iter().enumerate() {
            let w = 1u64 << i;
            weighted.extend(lvl.iter().map(|&x| (x, w)));
        }
        weighted.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let total: u64 = weighted.iter().map(|(_, w)| w).sum();
        // Same nearest-rank convention as `quantile_unsorted`.
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (x, w) in &weighted {
            seen += w;
            if seen >= rank {
                return *x;
            }
        }
        weighted.last().unwrap().0
    }
}

impl Serialize for QuantileSketch {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("k".to_string(), Value::U64(self.k as u64)),
            ("count".to_string(), Value::U64(self.count)),
            ("parity".to_string(), self.parity.to_value()),
            ("levels".to_string(), self.levels.to_value()),
        ])
    }
}

impl Deserialize for QuantileSketch {
    fn from_value(v: &Value) -> Result<Self, String> {
        let k = v
            .get("k")
            .and_then(Value::as_u64)
            .ok_or("QuantileSketch: missing `k`")? as usize;
        let count =
            v.get("count").and_then(Value::as_u64).ok_or("QuantileSketch: missing `count`")?;
        let parity: Vec<u64> =
            Deserialize::from_value(v.get("parity").ok_or("QuantileSketch: missing `parity`")?)?;
        let levels: Vec<Vec<f64>> =
            Deserialize::from_value(v.get("levels").ok_or("QuantileSketch: missing `levels`")?)?;
        if levels.is_empty() || levels.len() != parity.len() {
            return Err("QuantileSketch: level/parity shape mismatch".to_string());
        }
        if levels.iter().flatten().any(|x| !x.is_finite()) {
            return Err("QuantileSketch: non-finite retained value".to_string());
        }
        Ok(QuantileSketch { k, count, parity, levels })
    }
}

/// Welford running moments plus min/max — the mergeable, serialisable
/// cousin of [`crate::stats::Summary`] used inside shard digests.
#[derive(Clone, Copy, Debug)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Welford {
    fn default() -> Self {
        Welford { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Welford {
        Welford::default()
    }

    /// Add one (finite) observation.
    #[inline]
    pub fn add(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "Welford::add: non-finite value {x}");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Chan's parallel-merge update. Order-sensitive in the last bit —
    /// callers merge shards in index order for reproducibility.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * (other.count as f64 / n as f64);
        self.m2 += other.m2 + delta * delta * (self.count as f64 * other.count as f64 / n as f64);
        self.count = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0 when empty, so reports stay finite).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl Serialize for Welford {
    fn to_value(&self) -> Value {
        if self.count == 0 {
            // min/max are ±inf when empty, which JSON cannot carry; the
            // empty state is fully described by its count.
            return Value::Object(vec![("count".to_string(), Value::U64(0))]);
        }
        Value::Object(vec![
            ("count".to_string(), Value::U64(self.count)),
            ("mean".to_string(), Value::F64(self.mean)),
            ("m2".to_string(), Value::F64(self.m2)),
            ("min".to_string(), Value::F64(self.min)),
            ("max".to_string(), Value::F64(self.max)),
        ])
    }
}

impl Deserialize for Welford {
    fn from_value(v: &Value) -> Result<Self, String> {
        let count = v.get("count").and_then(Value::as_u64).ok_or("Welford: missing `count`")?;
        if count == 0 {
            return Ok(Welford::new());
        }
        let f = |name: &str| {
            v.get(name)
                .and_then(Value::as_f64)
                .filter(|x| x.is_finite())
                .ok_or_else(|| format!("Welford: missing/non-finite `{name}`"))
        };
        Ok(Welford { count, mean: f("mean")?, m2: f("m2")?, min: f("min")?, max: f("max")? })
    }
}

/// What a digest channel accumulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelKind {
    /// Monotone `u64` count.
    Counter,
    /// Welford moments + min/max.
    Summary,
    /// Half-octave [`LogHistogram`].
    Histogram,
    /// Deterministic [`QuantileSketch`].
    Sketch,
}

impl ChannelKind {
    fn tag(self) -> &'static str {
        match self {
            ChannelKind::Counter => "counter",
            ChannelKind::Summary => "summary",
            ChannelKind::Histogram => "histogram",
            ChannelKind::Sketch => "sketch",
        }
    }

    fn from_tag(s: &str) -> Option<ChannelKind> {
        Some(match s {
            "counter" => ChannelKind::Counter,
            "summary" => ChannelKind::Summary,
            "histogram" => ChannelKind::Histogram,
            "sketch" => ChannelKind::Sketch,
            _ => return None,
        })
    }
}

/// Handle to one channel of a [`ShardDigest`] — a plain index, cheap to
/// copy into fold closures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelId(usize);

/// The fixed channel layout every shard digest of a campaign shares.
///
/// Names are `&'static str` (like [`crate::metrics::MetricsRegistry`]
/// rows): channels are declared by folding *code*, not by scenario files,
/// so the static lifetime costs nothing and keeps snapshots
/// allocation-free.
#[derive(Clone, Debug, Default)]
pub struct DigestSchema {
    channels: Vec<(&'static str, ChannelKind)>,
}

impl DigestSchema {
    /// An empty schema.
    pub fn new() -> DigestSchema {
        DigestSchema::default()
    }

    fn push(&mut self, name: &'static str, kind: ChannelKind) -> ChannelId {
        assert!(
            self.channels.iter().all(|(n, _)| *n != name),
            "duplicate digest channel `{name}`"
        );
        self.channels.push((name, kind));
        ChannelId(self.channels.len() - 1)
    }

    /// Declare a counter channel.
    pub fn counter(&mut self, name: &'static str) -> ChannelId {
        self.push(name, ChannelKind::Counter)
    }

    /// Declare a summary channel.
    pub fn summary(&mut self, name: &'static str) -> ChannelId {
        self.push(name, ChannelKind::Summary)
    }

    /// Declare a histogram channel.
    pub fn histogram(&mut self, name: &'static str) -> ChannelId {
        self.push(name, ChannelKind::Histogram)
    }

    /// Declare a quantile-sketch channel.
    pub fn sketch(&mut self, name: &'static str) -> ChannelId {
        self.push(name, ChannelKind::Sketch)
    }

    /// Channel count.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// True when no channels are declared.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// `(name, kind)` of every channel, in declaration order.
    pub fn channels(&self) -> &[(&'static str, ChannelKind)] {
        &self.channels
    }

    /// Look a channel up by name (for reporting; fold paths hold ids).
    pub fn id(&self, name: &str) -> Option<ChannelId> {
        self.channels.iter().position(|(n, _)| *n == name).map(ChannelId)
    }

    /// A stable fingerprint of the layout, folded into campaign ids so a
    /// checkpoint written under a different schema is never resumed.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for (name, kind) in &self.channels {
            h.write(name.as_bytes());
            h.write(kind.tag().as_bytes());
        }
        h.finish()
    }
}

#[derive(Clone, Debug)]
enum ChannelState {
    Counter(u64),
    Summary(Welford),
    Histogram(Box<LogHistogram>),
    Sketch(QuantileSketch),
}

impl ChannelState {
    fn new(kind: ChannelKind) -> ChannelState {
        match kind {
            ChannelKind::Counter => ChannelState::Counter(0),
            ChannelKind::Summary => ChannelState::Summary(Welford::new()),
            ChannelKind::Histogram => ChannelState::Histogram(Box::default()),
            ChannelKind::Sketch => ChannelState::Sketch(QuantileSketch::default()),
        }
    }

    fn kind(&self) -> ChannelKind {
        match self {
            ChannelState::Counter(_) => ChannelKind::Counter,
            ChannelState::Summary(_) => ChannelKind::Summary,
            ChannelState::Histogram(_) => ChannelKind::Histogram,
            ChannelState::Sketch(_) => ChannelKind::Sketch,
        }
    }
}

/// The streaming accumulator for one shard (or, after merging, a whole
/// campaign): one [`ChannelState`] per schema channel plus the call range
/// covered.
#[derive(Clone, Debug)]
pub struct ShardDigest {
    first: u64,
    len: u64,
    channels: Vec<ChannelState>,
}

impl ShardDigest {
    /// A fresh digest for calls `[first, first + len)`.
    pub fn new(schema: &DigestSchema, first: u64, len: u64) -> ShardDigest {
        ShardDigest {
            first,
            len,
            channels: schema.channels.iter().map(|&(_, k)| ChannelState::new(k)).collect(),
        }
    }

    /// First call index covered.
    pub fn first(&self) -> u64 {
        self.first
    }

    /// Number of calls covered.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the digest covers no calls.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bump a counter channel.
    #[inline]
    pub fn add(&mut self, id: ChannelId, n: u64) {
        match &mut self.channels[id.0] {
            ChannelState::Counter(c) => *c += n,
            other => panic!("channel {} is a {:?}, not a counter", id.0, other.kind()),
        }
    }

    /// Add an observation to a summary channel.
    #[inline]
    pub fn observe(&mut self, id: ChannelId, x: f64) {
        match &mut self.channels[id.0] {
            ChannelState::Summary(w) => w.add(x),
            other => panic!("channel {} is a {:?}, not a summary", id.0, other.kind()),
        }
    }

    /// Record a sample into a histogram channel.
    #[inline]
    pub fn record(&mut self, id: ChannelId, v: u64) {
        match &mut self.channels[id.0] {
            ChannelState::Histogram(h) => h.record(v),
            other => panic!("channel {} is a {:?}, not a histogram", id.0, other.kind()),
        }
    }

    /// Insert an observation into a sketch channel.
    #[inline]
    pub fn sketch_insert(&mut self, id: ChannelId, x: f64) {
        match &mut self.channels[id.0] {
            ChannelState::Sketch(s) => s.insert(x),
            other => panic!("channel {} is a {:?}, not a sketch", id.0, other.kind()),
        }
    }

    /// Counter value.
    pub fn count(&self, id: ChannelId) -> u64 {
        match &self.channels[id.0] {
            ChannelState::Counter(c) => *c,
            other => panic!("channel {} is a {:?}, not a counter", id.0, other.kind()),
        }
    }

    /// Summary accumulator.
    pub fn summary(&self, id: ChannelId) -> &Welford {
        match &self.channels[id.0] {
            ChannelState::Summary(w) => w,
            other => panic!("channel {} is a {:?}, not a summary", id.0, other.kind()),
        }
    }

    /// Histogram accumulator.
    pub fn histogram(&self, id: ChannelId) -> &LogHistogram {
        match &self.channels[id.0] {
            ChannelState::Histogram(h) => h,
            other => panic!("channel {} is a {:?}, not a histogram", id.0, other.kind()),
        }
    }

    /// Sketch accumulator.
    pub fn sketch(&self, id: ChannelId) -> &QuantileSketch {
        match &self.channels[id.0] {
            ChannelState::Sketch(s) => s,
            other => panic!("channel {} is a {:?}, not a sketch", id.0, other.kind()),
        }
    }

    /// Merge the digest of the immediately following call range.
    ///
    /// Panics unless `other` starts exactly where `self` ends and the
    /// channel layouts match — merging shards out of order would silently
    /// change sketch/summary bits, so it is a hard error instead.
    pub fn merge_from(&mut self, other: &ShardDigest) {
        assert_eq!(
            self.first + self.len,
            other.first,
            "digest merge out of order: [{}, {}) then [{}, {})",
            self.first,
            self.first + self.len,
            other.first,
            other.first + other.len
        );
        assert_eq!(self.channels.len(), other.channels.len(), "digest channel count mismatch");
        for (a, b) in self.channels.iter_mut().zip(other.channels.iter()) {
            match (a, b) {
                (ChannelState::Counter(x), ChannelState::Counter(y)) => *x += y,
                (ChannelState::Summary(x), ChannelState::Summary(y)) => x.merge(y),
                (ChannelState::Histogram(x), ChannelState::Histogram(y)) => x.merge(y),
                (ChannelState::Sketch(x), ChannelState::Sketch(y)) => x.merge(y),
                (a, b) => panic!("digest channel kind mismatch: {:?} vs {:?}", a.kind(), b.kind()),
            }
        }
        self.len += other.len;
    }

    /// A 64-bit FNV-1a fingerprint of the full digest state (range, every
    /// channel's exact accumulator bits). Two digests with equal
    /// fingerprints are — for the campaign contract's purposes —
    /// bit-identical; the resume tests pin interrupted-and-resumed
    /// campaigns to uninterrupted ones through this value.
    pub fn fingerprint(&self, schema: &DigestSchema) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.first);
        h.write_u64(self.len);
        for ((name, _), state) in schema.channels.iter().zip(self.channels.iter()) {
            h.write(name.as_bytes());
            h.write(state.kind().tag().as_bytes());
            match state {
                ChannelState::Counter(c) => h.write_u64(*c),
                ChannelState::Summary(w) => {
                    h.write_u64(w.count);
                    h.write_u64(w.mean.to_bits());
                    h.write_u64(w.m2.to_bits());
                    h.write_u64(w.min.to_bits());
                    h.write_u64(w.max.to_bits());
                }
                ChannelState::Histogram(hist) => {
                    h.write_u64(hist.count());
                    for (edge, c) in hist.nonzero_bins() {
                        h.write_u64(edge);
                        h.write_u64(c);
                    }
                    h.write_u64(hist.min());
                    h.write_u64(hist.max());
                    h.write_u64(hist.mean().to_bits());
                }
                ChannelState::Sketch(s) => {
                    h.write_u64(s.count);
                    for (p, lvl) in s.parity.iter().zip(s.levels.iter()) {
                        h.write_u64(*p);
                        h.write_u64(lvl.len() as u64);
                        for x in lvl {
                            h.write_u64(x.to_bits());
                        }
                    }
                }
            }
        }
        h.finish()
    }

    /// Serialise with channel names from `schema` (the inverse of
    /// [`ShardDigest::from_value_checked`]).
    pub fn to_value(&self, schema: &DigestSchema) -> Value {
        let channels: Vec<Value> = schema
            .channels
            .iter()
            .zip(self.channels.iter())
            .map(|(&(name, _), state)| {
                let payload = match state {
                    ChannelState::Counter(c) => Value::U64(*c),
                    ChannelState::Summary(w) => w.to_value(),
                    ChannelState::Histogram(h) => h.to_value(),
                    ChannelState::Sketch(s) => s.to_value(),
                };
                Value::Object(vec![
                    ("name".to_string(), Value::Str(name.to_string())),
                    ("kind".to_string(), Value::Str(state.kind().tag().to_string())),
                    ("state".to_string(), payload),
                ])
            })
            .collect();
        Value::Object(vec![
            ("first".to_string(), Value::U64(self.first)),
            ("len".to_string(), Value::U64(self.len)),
            ("channels".to_string(), Value::Array(channels)),
        ])
    }

    /// Deserialise, verifying the channel layout matches `schema` (name,
    /// kind and order) — a checkpoint from a different campaign layout is
    /// an error, never a silent partial load.
    pub fn from_value_checked(schema: &DigestSchema, v: &Value) -> Result<ShardDigest, String> {
        let first = v.get("first").and_then(Value::as_u64).ok_or("digest: missing `first`")?;
        let len = v.get("len").and_then(Value::as_u64).ok_or("digest: missing `len`")?;
        let channels =
            v.get("channels").and_then(Value::as_array).ok_or("digest: missing `channels`")?;
        if channels.len() != schema.channels.len() {
            return Err(format!(
                "digest: {} channels, schema has {}",
                channels.len(),
                schema.channels.len()
            ));
        }
        let mut states = Vec::with_capacity(channels.len());
        for (cv, &(want_name, want_kind)) in channels.iter().zip(schema.channels.iter()) {
            let name = cv.get("name").and_then(Value::as_str).ok_or("digest: channel name")?;
            let kind = cv
                .get("kind")
                .and_then(Value::as_str)
                .and_then(ChannelKind::from_tag)
                .ok_or("digest: channel kind")?;
            if name != want_name || kind != want_kind {
                return Err(format!(
                    "digest: channel `{name}` ({kind:?}) does not match schema \
                     `{want_name}` ({want_kind:?})"
                ));
            }
            let state = cv.get("state").ok_or("digest: channel state")?;
            states.push(match kind {
                ChannelKind::Counter => ChannelState::Counter(
                    state.as_u64().ok_or("digest: counter state must be u64")?,
                ),
                ChannelKind::Summary => ChannelState::Summary(Welford::from_value(state)?),
                ChannelKind::Histogram => {
                    ChannelState::Histogram(Box::new(LogHistogram::from_value(state)?))
                }
                ChannelKind::Sketch => ChannelState::Sketch(QuantileSketch::from_value(state)?),
            });
        }
        Ok(ShardDigest { first, len, channels: states })
    }
}

/// FNV-1a, 64-bit — tiny, dependency-free, stable across platforms.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedFactory;

    #[test]
    fn sketch_is_exact_before_first_compaction() {
        // The acceptance pin: while count ≤ 2k the sketch must reproduce
        // `quantile_unsorted` bit for bit.
        let factory = SeedFactory::new(0xD16E57);
        let mut rng = factory.stream("sketch", 0);
        for n in [1usize, 2, 5, 100, 512] {
            let mut s = QuantileSketch::new(256);
            let mut xs: Vec<f64> = Vec::new();
            for _ in 0..n {
                let x = rng.normal(10.0, 3.0);
                s.insert(x);
                xs.push(x);
            }
            for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
                let mut buf = xs.clone();
                let exact = quantile_unsorted(&mut buf, q);
                assert_eq!(
                    s.quantile(q).to_bits(),
                    exact.to_bits(),
                    "n={n} q={q}: sketch {} vs exact {exact}",
                    s.quantile(q)
                );
            }
        }
    }

    #[test]
    fn sketch_stays_close_after_compaction() {
        let factory = SeedFactory::new(0xD16E58);
        let mut rng = factory.stream("sketch", 1);
        let n = 200_000usize;
        let mut s = QuantileSketch::new(256);
        let mut xs: Vec<f64> = Vec::with_capacity(n);
        for _ in 0..n {
            let x = rng.exponential(5.0);
            s.insert(x);
            xs.push(x);
        }
        assert!(s.retained() < 8 * 2 * 256, "retained {} values", s.retained());
        xs.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.1, 0.5, 0.9, 0.99] {
            let est = s.quantile(q);
            // Rank error: where does the estimate land in the true sorted
            // sample vs the target rank?
            let pos = xs.partition_point(|&x| x < est) as f64 / n as f64;
            assert!(
                (pos - q).abs() < 0.02,
                "q={q}: estimate {est} sits at rank {pos:.4}"
            );
        }
    }

    #[test]
    fn sketch_merge_matches_sequential_insert_order_contract() {
        // Merging shard sketches in index order must be deterministic:
        // two identical merge sequences give identical bits.
        let factory = SeedFactory::new(0xD16E59);
        let build = || {
            let mut parts: Vec<QuantileSketch> = Vec::new();
            for shard in 0..7u64 {
                let mut rng = factory.stream("m", shard);
                let mut s = QuantileSketch::new(64);
                for _ in 0..900 {
                    s.insert(rng.range_f64(0.0, 1.0));
                }
                parts.push(s);
            }
            let mut all = parts[0].clone();
            for p in &parts[1..] {
                all.merge(p);
            }
            all
        };
        let (a, b) = (build(), build());
        assert_eq!(a.count(), 6300);
        for q in [0.05, 0.5, 0.95] {
            assert_eq!(a.quantile(q).to_bits(), b.quantile(q).to_bits());
        }
    }

    #[test]
    fn sketch_round_trips_through_value_exactly() {
        let factory = SeedFactory::new(0xD16E5A);
        let mut rng = factory.stream("rt", 0);
        let mut s = QuantileSketch::new(16);
        for _ in 0..5000 {
            s.insert(rng.normal(0.0, 1.0));
        }
        let v = s.to_value();
        let back = QuantileSketch::from_value(&v).unwrap();
        assert_eq!(s.count, back.count);
        assert_eq!(s.levels.len(), back.levels.len());
        for (a, b) in s.levels.iter().zip(back.levels.iter()) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn welford_merge_and_round_trip() {
        let factory = SeedFactory::new(0xD16E5B);
        let mut rng = factory.stream("w", 0);
        let mut whole = Welford::new();
        let mut parts = [Welford::new(), Welford::new(), Welford::new()];
        for i in 0..3000 {
            let x = rng.lognormal(1.0, 0.5);
            whole.add(x);
            parts[i % 3].add(x);
        }
        // Welford merge is algebraically exact for count/min/max and
        // within float rounding for the moments.
        let mut merged = parts[0];
        merged.merge(&parts[1]);
        merged.merge(&parts[2]);
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.min().to_bits(), whole.min().to_bits());
        assert_eq!(merged.max().to_bits(), whole.max().to_bits());
        assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        assert!((merged.variance() - whole.variance()).abs() < 1e-6);

        let back = Welford::from_value(&merged.to_value()).unwrap();
        assert_eq!(back.count, merged.count);
        assert_eq!(back.mean.to_bits(), merged.mean.to_bits());
        assert_eq!(back.m2.to_bits(), merged.m2.to_bits());

        // Empty summaries round-trip too (their min/max are ±inf).
        let empty = Welford::from_value(&Welford::new().to_value()).unwrap();
        assert_eq!(empty.count(), 0);
    }

    #[test]
    fn digest_merge_equals_single_pass_and_round_trips() {
        let mut schema = DigestSchema::new();
        let calls = schema.counter("calls");
        let mos = schema.summary("mos");
        let delay = schema.histogram("delay_us");
        let loss = schema.sketch("loss_pct");

        let factory = SeedFactory::new(0xD16E5C);
        let fold = |d: &mut ShardDigest, i: u64| {
            let mut rng = factory.stream("call", i);
            d.add(calls, 1);
            d.observe(mos, rng.range_f64(1.0, 4.5));
            d.record(delay, rng.range_u64(100, 60_000));
            d.sketch_insert(loss, rng.range_f64(0.0, 20.0));
        };

        let n = 4000u64;
        let mut whole = ShardDigest::new(&schema, 0, n);
        for i in 0..n {
            fold(&mut whole, i);
        }

        // Fold the same calls twice through the same shard plan; one pass
        // round-trips every shard through its checkpoint encoding. The two
        // passes must agree bit for bit (the resume contract), and the
        // merged digest must agree with the single-pass fold exactly on
        // counters/histograms and to float rounding on the moments (the
        // shard plan moves sketch-compaction and Welford-merge boundaries,
        // so those bits legitimately depend on the plan — which is why a
        // campaign id pins the plan).
        let sharded = |roundtrip: bool| {
            let shard = 512u64;
            let mut merged: Option<ShardDigest> = None;
            let mut first = 0;
            while first < n {
                let len = shard.min(n - first);
                let mut d = ShardDigest::new(&schema, first, len);
                for i in first..first + len {
                    fold(&mut d, i);
                }
                if roundtrip {
                    let rt =
                        ShardDigest::from_value_checked(&schema, &d.to_value(&schema)).unwrap();
                    assert_eq!(rt.fingerprint(&schema), d.fingerprint(&schema));
                    d = rt;
                }
                match &mut merged {
                    None => merged = Some(d),
                    Some(m) => m.merge_from(&d),
                }
                first += len;
            }
            merged.unwrap()
        };
        let merged = sharded(true);
        assert_eq!(merged.fingerprint(&schema), sharded(false).fingerprint(&schema));
        assert_eq!(merged.count(calls), n);
        assert_eq!(merged.summary(mos).count(), n);
        assert_eq!(merged.histogram(delay).count(), n);
        assert_eq!(merged.sketch(loss).count(), n);
        assert_eq!(whole.count(calls), n);
        let (hm, hw) = (merged.histogram(delay), whole.histogram(delay));
        assert_eq!(hm.min(), hw.min());
        assert_eq!(hm.max(), hw.max());
        assert_eq!(hm.bins(), hw.bins());
        assert!((merged.summary(mos).mean() - whole.summary(mos).mean()).abs() < 1e-9);
        assert!((merged.sketch(loss).quantile(0.5) - whole.sketch(loss).quantile(0.5)).abs() < 0.5);
    }

    #[test]
    fn digest_rejects_out_of_order_merge_and_wrong_schema() {
        let mut schema = DigestSchema::new();
        schema.counter("calls");
        let a = ShardDigest::new(&schema, 0, 10);
        let c = ShardDigest::new(&schema, 20, 10);
        let mut first = a.clone();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            first.merge_from(&c);
        }));
        assert!(r.is_err(), "gap merge must panic");

        let mut other = DigestSchema::new();
        other.summary("calls");
        let v = a.to_value(&schema);
        assert!(ShardDigest::from_value_checked(&other, &v).is_err());
    }

    #[test]
    fn schema_fingerprint_tracks_layout() {
        let mut a = DigestSchema::new();
        a.counter("x");
        a.summary("y");
        let mut b = DigestSchema::new();
        b.counter("x");
        b.summary("y");
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = DigestSchema::new();
        c.counter("x");
        c.sketch("y");
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::stats::quantile_unsorted;
    use proptest::prelude::*;

    proptest! {
        /// Shard-boundary contract: splitting a stream into shards,
        /// sketching each shard independently, and merging in shard index
        /// order answers every quantile bit-identically to the exact
        /// routine on the whole stream — as long as the merged total stays
        /// within the never-compacted regime (`count ≤ 2k`). This is the
        /// exactness guarantee campaign digests rely on at typical shard
        /// sizes.
        #[test]
        fn sharded_merge_is_exact_below_compaction(
            xs in proptest::collection::vec(-1.0e9f64..1.0e9, 1..120),
            shard in 1usize..40,
            q in 0.0f64..=1.0,
        ) {
            let k = 64; // 2k = 128 > max stream length above
            let mut merged = QuantileSketch::new(k);
            for chunk in xs.chunks(shard) {
                let mut s = QuantileSketch::new(k);
                for &x in chunk {
                    s.insert(x);
                }
                merged.merge(&s);
            }
            prop_assert_eq!(merged.count(), xs.len() as u64);
            let mut buf = xs.clone();
            let exact = quantile_unsorted(&mut buf, q);
            prop_assert_eq!(
                merged.quantile(q).to_bits(),
                exact.to_bits(),
                "q={} sharded={} exact={}", q, merged.quantile(q), exact
            );
        }

        /// Past the compaction threshold exactness is no longer promised,
        /// but the sketch must stay sane: the count is conserved and any
        /// quantile answer is a value that was actually inserted.
        #[test]
        fn sharded_merge_past_compaction_stays_within_the_sample(
            xs in proptest::collection::vec(-1.0e6f64..1.0e6, 30..400),
            shard in 1usize..64,
            q in 0.0f64..=1.0,
        ) {
            let k = 8; // force compaction for most streams
            let mut merged = QuantileSketch::new(k);
            for chunk in xs.chunks(shard) {
                let mut s = QuantileSketch::new(k);
                for &x in chunk {
                    s.insert(x);
                }
                merged.merge(&s);
            }
            prop_assert_eq!(merged.count(), xs.len() as u64);
            let got = merged.quantile(q);
            prop_assert!(
                xs.iter().any(|&x| x.to_bits() == got.to_bits()),
                "quantile {} not drawn from the inserted sample", got
            );
        }
    }
}
