//! Campaign-scale flight recorder: deterministic worst-call forensics.
//!
//! A fleet campaign folds millions of analytically-sampled calls into
//! digests — nothing per-call survives, which is exactly right until a
//! tail claim needs *explaining*. The flight recorder closes that gap in
//! two deterministic pieces:
//!
//! 1. **Selection** — every call that finishes poor (score below the
//!    scenario's trigger) offers a [`FlightKey`] `(score, seed, index)`
//!    to a per-shard [`WorstK`] selector. Keys are totally ordered (the
//!    call index breaks every tie), so the surviving top-K set is a pure
//!    function of the offered keys — invariant under thread count, shard
//!    batching, and checkpoint kill/resume. Per-shard selectors merge in
//!    shard index order, exactly like
//!    [`ShardDigest`](crate::digest::ShardDigest), and serialise exactly
//!    (score bits, not decimal text) into shard checkpoints.
//! 2. **Capture** — after the campaign, the selected calls are
//!    re-simulated as full closed-loop world runs with a live telemetry
//!    ring; each run's surviving event timeline freezes into a
//!    [`FlightCapture`] exported via [`crate::export`] (Perfetto +
//!    JSONL). Because worlds are pure functions of `(config, seed)`,
//!    a capture is as deterministic as the run it replays.
//!
//! Selection costs one `f64` compare per call when the selector is full
//! (the common case) and nothing at all when `k == 0`; it never reads
//! the clock and never touches the digest, so recorder-on campaign
//! digest fingerprints are bit-identical to recorder-off. Event capture
//! itself rides the telemetry compile gate: [`FLIGHT_COMPILED`] mirrors
//! [`TRACE_COMPILED`](crate::telemetry::TRACE_COMPILED), and in a
//! release build without the `trace` feature captures carry empty
//! timelines while selection (scores, indices) still works in full.

use serde::Value;

use crate::telemetry::TelemetrySession;
use crate::trace::TraceEvent;

/// True when forensic captures carry event timelines: the flight
/// recorder's capture phase replays calls through the telemetry layer,
/// so it is compiled in exactly when
/// [`TRACE_COMPILED`](crate::telemetry::TRACE_COMPILED) is. Selection
/// is plain arithmetic and works in every build.
pub const FLIGHT_COMPILED: bool = crate::telemetry::TRACE_COMPILED;

/// Order-preserving bit encoding of a finite `f64`: `a < b` iff
/// `ord_bits(a) < ord_bits(b)`. Standard sign-flip trick; total over
/// every finite value including `-0.0 < +0.0` (distinct bits — callers
/// normalise if they care, the selector only needs *a* total order).
fn ord_bits(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 0 {
        b | (1 << 63)
    } else {
        !b
    }
}

/// Identity and severity of one poor call: the flight recorder's
/// selection key. Ordered worst-first by `(score, seed, index)` — lowest
/// score is worst, and the call index makes every key distinct, so a set
/// of keys has exactly one top-K subset no matter what order (or on how
/// many threads) they were offered in.
#[derive(Clone, Copy, Debug)]
pub struct FlightKey {
    /// The call's quality score (MOS for VoIP, session QoE for FPS).
    /// Lower is worse.
    pub score: f64,
    /// The campaign's master seed (identifies the sampling universe the
    /// index lives in).
    pub seed: u64,
    /// The call index — the replay handle: re-simulating call `index`
    /// under `seed` reproduces this call exactly.
    pub index: u64,
}

impl FlightKey {
    fn sort_key(&self) -> (u64, u64, u64) {
        (ord_bits(self.score), self.seed, self.index)
    }
}

impl PartialEq for FlightKey {
    fn eq(&self, other: &FlightKey) -> bool {
        self.sort_key() == other.sort_key()
    }
}
impl Eq for FlightKey {}
impl PartialOrd for FlightKey {
    fn partial_cmp(&self, other: &FlightKey) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FlightKey {
    fn cmp(&self, other: &FlightKey) -> std::cmp::Ordering {
        self.sort_key().cmp(&other.sort_key())
    }
}

/// A bounded worst-K selector over [`FlightKey`]s: retains the K
/// smallest (worst) keys ever offered, in ascending (worst-first)
/// order. `k == 0` disables it entirely — `offer` returns before
/// touching anything, which is what makes the recorder free when off.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorstK {
    k: usize,
    /// Sorted ascending; `entries[0]` is the worst call seen.
    entries: Vec<FlightKey>,
}

impl WorstK {
    /// An empty selector retaining at most `k` keys.
    pub fn new(k: usize) -> WorstK {
        WorstK { k, entries: Vec::with_capacity(k.min(64)) }
    }

    /// The retention bound.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Keys retained so far, worst first.
    pub fn entries(&self) -> &[FlightKey] {
        &self.entries
    }

    /// Number of keys retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Offer one key. When the selector is full and the key is no worse
    /// than the current cutoff this is a single compare — the campaign
    /// fold's common case.
    #[inline]
    pub fn offer(&mut self, key: FlightKey) {
        if self.k == 0 {
            return;
        }
        if self.entries.len() == self.k
            && key >= *self.entries.last().expect("full selector is non-empty")
        {
            return;
        }
        let pos = self.entries.partition_point(|e| *e < key);
        self.entries.insert(pos, key);
        if self.entries.len() > self.k {
            self.entries.pop();
        }
    }

    /// Fold another selector in. The result holds the top-K of the union
    /// of both key sets — associative and commutative, though the
    /// campaign engine merges in shard index order anyway (same
    /// discipline as digests).
    pub fn merge_from(&mut self, other: &WorstK) {
        assert_eq!(self.k, other.k, "merging selectors of different k");
        for e in &other.entries {
            self.offer(*e);
        }
    }
}

// Checkpoint serialisation: score *bits* as u64, never decimal text, so
// a selector round-trips through a shard checkpoint exactly and resume
// lands on the identical top-K set.
impl serde::Serialize for WorstK {
    fn to_value(&self) -> Value {
        let entries: Vec<Value> = self
            .entries
            .iter()
            .map(|e| {
                Value::Object(vec![
                    ("score_bits".to_string(), Value::U64(e.score.to_bits())),
                    ("seed".to_string(), Value::U64(e.seed)),
                    ("index".to_string(), Value::U64(e.index)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("k".to_string(), Value::U64(self.k as u64)),
            ("entries".to_string(), Value::Array(entries)),
        ])
    }
}

impl serde::Deserialize for WorstK {
    fn from_value(v: &Value) -> Result<Self, String> {
        let k = v.get("k").and_then(Value::as_u64).ok_or("WorstK: missing `k`")? as usize;
        let items = match v.get("entries") {
            Some(Value::Array(a)) => a,
            _ => return Err("WorstK: missing `entries`".to_string()),
        };
        if items.len() > k {
            return Err("WorstK: more entries than k".to_string());
        }
        let mut entries = Vec::with_capacity(items.len());
        for e in items {
            let field = |name: &str| {
                e.get(name)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("WorstK: entry missing `{name}`"))
            };
            entries.push(FlightKey {
                score: f64::from_bits(field("score_bits")?),
                seed: field("seed")?,
                index: field("index")?,
            });
        }
        if !entries.windows(2).all(|w| w[0] < w[1]) {
            return Err("WorstK: entries not strictly worst-first".to_string());
        }
        Ok(WorstK { k, entries })
    }
}

/// One frozen forensic capture: a selected worst call's identity plus
/// the full event timeline of its deterministic replay.
#[derive(Clone, Debug)]
pub struct FlightCapture {
    /// Display label (`"<arm>/call-<index>"` for fleet campaigns).
    pub label: String,
    /// The campaign score that selected this call.
    pub score: f64,
    /// Campaign master seed.
    pub seed: u64,
    /// Call index within the campaign.
    pub index: u64,
    /// Per-run sequence number of `events[0]` (0 unless the replay ring
    /// evicted).
    pub first_seq: u64,
    /// Events evicted from the replay ring.
    pub dropped: u64,
    /// The surviving event timeline, in emission order. Empty when
    /// [`FLIGHT_COMPILED`] is false.
    pub events: Vec<TraceEvent>,
}

impl FlightCapture {
    /// Freeze a replay's telemetry session into a capture for `key`.
    pub fn from_session(label: String, key: FlightKey, session: TelemetrySession) -> FlightCapture {
        FlightCapture {
            label,
            score: key.score,
            seed: key.seed,
            index: key.index,
            first_seq: session.first_seq,
            dropped: session.dropped,
            events: session.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    fn key(score: f64, index: u64) -> FlightKey {
        FlightKey { score, seed: 7, index }
    }

    #[test]
    fn key_order_is_total_and_worst_first() {
        let mut keys = [
            key(2.0, 5),
            key(-1.5, 0),
            key(2.0, 3),
            key(0.0, 1),
            FlightKey { score: 2.0, seed: 6, index: 3 },
        ];
        keys.sort();
        let ordered: Vec<(f64, u64, u64)> = keys.iter().map(|k| (k.score, k.seed, k.index)).collect();
        assert_eq!(
            ordered,
            vec![(-1.5, 7, 0), (0.0, 7, 1), (2.0, 6, 3), (2.0, 7, 3), (2.0, 7, 5)]
        );
        // Negative zero and positive zero are distinct but still ordered.
        assert!(key(-0.0, 1) < key(0.0, 1));
    }

    #[test]
    fn offer_keeps_the_k_worst_regardless_of_order() {
        let scores = [5.0, 1.0, 3.5, 0.5, 4.0, 2.0, 0.5];
        let mut forward = WorstK::new(3);
        let mut backward = WorstK::new(3);
        for (i, &s) in scores.iter().enumerate() {
            forward.offer(key(s, i as u64));
        }
        for (i, &s) in scores.iter().enumerate().rev() {
            backward.offer(key(s, i as u64));
        }
        assert_eq!(forward, backward);
        let kept: Vec<(f64, u64)> = forward.entries().iter().map(|e| (e.score, e.index)).collect();
        // Two ties at 0.5 resolve by index; 1.0 fills the last slot.
        assert_eq!(kept, vec![(0.5, 3), (0.5, 6), (1.0, 1)]);
    }

    #[test]
    fn zero_k_is_inert() {
        let mut w = WorstK::new(0);
        w.offer(key(0.0, 0));
        assert!(w.is_empty());
        let mut other = WorstK::new(0);
        other.merge_from(&w);
        assert!(other.is_empty());
    }

    #[test]
    fn merge_equals_single_stream_selection() {
        let n = 200u64;
        let score = |i: u64| ((i.wrapping_mul(2654435761) % 1000) as f64) / 10.0;
        let mut whole = WorstK::new(8);
        for i in 0..n {
            whole.offer(key(score(i), i));
        }
        // Shard into 7 uneven pieces, select per shard, merge in order.
        let mut merged = WorstK::new(8);
        for chunk in (0..n).collect::<Vec<_>>().chunks(31) {
            let mut shard = WorstK::new(8);
            for &i in chunk {
                shard.offer(key(score(i), i));
            }
            merged.merge_from(&shard);
        }
        assert_eq!(whole, merged);
    }

    #[test]
    fn serde_round_trip_is_exact() {
        let mut w = WorstK::new(4);
        for (i, s) in [3.0999999999999996, -0.0, 2.5e-300, 61.0].into_iter().enumerate() {
            w.offer(key(s, i as u64));
        }
        let text = serde_json::to_string(&w.to_value()).unwrap();
        let v: Value = serde_json::from_str(&text).unwrap();
        let back = WorstK::from_value(&v).unwrap();
        assert_eq!(w.k(), back.k());
        assert_eq!(w.entries().len(), back.entries().len());
        for (a, b) in w.entries().iter().zip(back.entries()) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
            assert_eq!((a.seed, a.index), (b.seed, b.index));
        }
    }

    #[test]
    fn corrupt_selectors_are_rejected() {
        let bad = serde_json::from_str::<Value>(
            "{\"k\":1,\"entries\":[{\"score_bits\":0,\"seed\":0,\"index\":0},{\"score_bits\":1,\"seed\":0,\"index\":1}]}",
        )
        .unwrap();
        assert!(WorstK::from_value(&bad).is_err(), "more entries than k must be rejected");
        let unsorted = serde_json::from_str::<Value>(
            "{\"k\":3,\"entries\":[{\"score_bits\":4617315517961601024,\"seed\":0,\"index\":0},{\"score_bits\":0,\"seed\":0,\"index\":1}]}",
        )
        .unwrap();
        assert!(WorstK::from_value(&unsorted).is_err(), "unsorted entries must be rejected");
    }
}
