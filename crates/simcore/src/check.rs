//! The invariant-audit layer: always-compiled runtime checks threaded
//! through the simulator's hot path.
//!
//! Tier-1 tests spot-check behaviour; this module *proves* structural
//! claims continuously while every test and sweep runs:
//!
//! - [`sim_assert!`]/[`sim_assert_eq!`] — invariant assertions that are
//!   active in debug builds **and** in release builds compiled with the
//!   `audit` cargo feature, so release-mode CI exercises the same checks.
//!   Unlike `debug_assert!`, an invariant guarded this way cannot silently
//!   rot in optimised binaries.
//! - [`PacketLedger`] — a packet-conservation ledger for the world model:
//!   every stream-packet copy that enters the network must end in exactly
//!   one fate (delivered, queue-dropped, air-lost, ring-rolled, or still
//!   in flight at the horizon), and the ledger's view of queue occupancy
//!   must match the devices' ground truth at finalisation.
//!
//! The audit layer **observes only**: it never draws randomness, schedules
//! events, or mutates simulation state, so audit-on and audit-off runs are
//! bit-identical by construction (a property `tests/invariant_audit.rs`
//! pins at 1/2/4/8 worker threads).
//!
//! [`sim_assert!`]: crate::sim_assert
//! [`sim_assert_eq!`]: crate::sim_assert_eq

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};

/// `true` when the audit checks are compiled in: every debug build, and
/// release builds with `--features audit`. When `false`, [`sim_assert!`]
/// bodies constant-fold away entirely.
///
/// [`sim_assert!`]: crate::sim_assert
pub const AUDIT_COMPILED: bool = cfg!(any(debug_assertions, feature = "audit"));

/// Runtime kill-switch (default: checks run whenever compiled in). Tests
/// use [`set_enabled`] to compare audit-on vs audit-off output.
static SUSPENDED: AtomicBool = AtomicBool::new(false);

/// Are audit checks active right now?
#[inline(always)]
pub fn enabled() -> bool {
    AUDIT_COMPILED && !SUSPENDED.load(Ordering::Relaxed)
}

/// Suspend (`false`) or resume (`true`) audit checks at runtime. The
/// differential tests use this to demonstrate that the audit layer only
/// observes: outputs must be bit-identical either way. A no-op when the
/// checks are not compiled in.
pub fn set_enabled(on: bool) {
    SUSPENDED.store(!on, Ordering::Relaxed);
}

/// Report an invariant violation. Split out of the macros so the cold
/// panic path does not bloat every call site.
#[cold]
#[inline(never)]
pub fn audit_failure(msg: &str, file: &str, line: u32) -> ! {
    panic!("simulation invariant violated [{file}:{line}]: {msg}");
}

/// Run `f`, converting any panic — a tripped [`sim_assert!`], a
/// [`PacketLedger`] closure failure, or a plain engine bug — into an
/// `Err` carrying the panic message. This is the bridge the chaos engine
/// uses to treat invariant violations as *observations* (an
/// `"engine-panic"` oracle verdict attributable to one fault plan)
/// instead of letting them poison a whole campaign shard.
///
/// The closure is wrapped in [`AssertUnwindSafe`]: callers must not reuse
/// state `f` mutated before panicking (the chaos oracle rebuilds its
/// worlds from scratch per evaluation, so nothing is reused).
pub fn capture_panic<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// Assert a simulation invariant.
///
/// Active in debug builds and in `--features audit` release builds;
/// compiled out otherwise. Use it wherever `debug_assert!` would guard a
/// *simulation* invariant (as opposed to a plain programming precondition),
/// so release-mode CI keeps exercising the check.
#[macro_export]
macro_rules! sim_assert {
    ($cond:expr $(,)?) => {
        if $crate::check::enabled() && !($cond) {
            $crate::check::audit_failure(
                ::std::concat!("sim_assert failed: ", ::std::stringify!($cond)),
                ::std::file!(),
                ::std::line!(),
            );
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if $crate::check::enabled() && !($cond) {
            $crate::check::audit_failure(&::std::format!($($arg)+), ::std::file!(), ::std::line!());
        }
    };
}

/// Assert two expressions are equal, as a simulation invariant (see
/// [`sim_assert!`](crate::sim_assert)).
#[macro_export]
macro_rules! sim_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        if $crate::check::enabled() {
            let (__l, __r) = (&$left, &$right);
            if __l != __r {
                $crate::check::audit_failure(
                    &::std::format!(
                        "sim_assert_eq failed: {} != {} ({:?} vs {:?})",
                        ::std::stringify!($left),
                        ::std::stringify!($right),
                        __l,
                        __r
                    ),
                    ::std::file!(),
                    ::std::line!(),
                );
            }
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        if $crate::check::enabled() {
            let (__l, __r) = (&$left, &$right);
            if __l != __r {
                $crate::check::audit_failure(&::std::format!($($arg)+), ::std::file!(), ::std::line!());
            }
        }
    }};
}

/// Packet-conservation ledger for a closed-loop world run.
///
/// Every stream-packet *copy* that enters the network is tracked through a
/// fixed set of stages and terminal fates:
///
/// ```text
/// emit ──► in_transit ──► queued ──► in_tx ──► delivered
///              │             │          │  └──► delivered_unheard
///              │             │          └─────► air_lost
///              │             └────────────────► queue_dropped
///              ├──► stale_dropped (middlebox down: discarded at the door)
///              └──► buffered ──► rolled_over | stale_dropped
///                       └──────► in_transit (middlebox burst/stream)
/// ```
///
/// The world calls one transition method per hand-off; each keeps the
/// conservation identity `emitted == Σ stages + Σ fates` and checks
/// non-negativity. At the end of the run, [`PacketLedger::finalize`]
/// cross-checks the ledger's idea of queue and ring occupancy against the
/// devices' ground truth — which is what actually catches a forgotten
/// drop path or a double-counted delivery.
///
/// Counter updates are unconditional (a handful of integer adds; they can
/// never perturb simulation behaviour); only the *assertions* are gated on
/// [`enabled`].
#[derive(Clone, Debug, Default)]
pub struct PacketLedger {
    /// Copies that entered the network.
    pub emitted: i64,
    /// Copies on a wire/LAN leg (or a scheduled middlebox burst).
    pub in_transit: i64,
    /// Copies sitting in an AP driver or hardware queue.
    pub queued: i64,
    /// Copies currently being transmitted by a radio.
    pub in_tx: i64,
    /// Copies buffered in a middlebox ring.
    pub buffered: i64,
    /// Terminal: transmitted and heard by the client.
    pub delivered: i64,
    /// Terminal: transmitted successfully but the client was not listening.
    pub delivered_unheard: i64,
    /// Terminal: all link-layer retries failed.
    pub air_lost: i64,
    /// Terminal: dropped from an AP queue (head-drop, tail-drop, not
    /// associated, or flushed by an AP reboot).
    pub queue_dropped: i64,
    /// Terminal: displaced from a middlebox ring by rollover.
    pub rolled_over: i64,
    /// Terminal: drained from a middlebox ring but older than the client's
    /// start request (useless, discarded).
    pub stale_dropped: i64,
}

impl PacketLedger {
    /// A fresh ledger.
    pub fn new() -> PacketLedger {
        PacketLedger::default()
    }

    #[inline]
    fn check_nonneg(&self) {
        sim_assert!(
            self.in_transit >= 0
                && self.queued >= 0
                && self.in_tx >= 0
                && self.buffered >= 0,
            "packet ledger went negative: {self:?}"
        );
    }

    /// A copy enters the network toward an AP or the middlebox.
    #[inline]
    pub fn emit(&mut self) {
        self.emitted += 1;
        self.in_transit += 1;
    }

    /// A copy reached an AP and was queued (driver or hardware queue).
    #[inline]
    pub fn enqueue_ok(&mut self) {
        self.in_transit -= 1;
        self.queued += 1;
        self.check_nonneg();
    }

    /// A copy reached an AP and was rejected (tail-drop full, or the
    /// adapter is not associated).
    #[inline]
    pub fn enqueue_rejected(&mut self) {
        self.in_transit -= 1;
        self.queue_dropped += 1;
        self.check_nonneg();
    }

    /// A copy was admitted but displaced the oldest queued copy
    /// (head-drop): net queue occupancy is unchanged, one copy died.
    #[inline]
    pub fn enqueue_displaced(&mut self) {
        self.in_transit -= 1;
        self.queued += 1;
        // The displaced victim leaves the queue.
        self.queued -= 1;
        self.queue_dropped += 1;
        self.check_nonneg();
    }

    /// `n` queued copies were destroyed in place (e.g. an AP reboot).
    #[inline]
    pub fn flushed(&mut self, n: usize) {
        self.queued -= n as i64;
        self.queue_dropped += n as i64;
        self.check_nonneg();
    }

    /// The radio picked a queued copy for transmission.
    #[inline]
    pub fn tx_start(&mut self) {
        self.queued -= 1;
        self.in_tx += 1;
        self.check_nonneg();
    }

    /// Transmission succeeded and the client heard it.
    #[inline]
    pub fn tx_heard(&mut self) {
        self.in_tx -= 1;
        self.delivered += 1;
        self.check_nonneg();
    }

    /// Transmission succeeded on the air but the client was elsewhere.
    #[inline]
    pub fn tx_unheard(&mut self) {
        self.in_tx -= 1;
        self.delivered_unheard += 1;
        self.check_nonneg();
    }

    /// Transmission failed after all link-layer retries.
    #[inline]
    pub fn tx_lost(&mut self) {
        self.in_tx -= 1;
        self.air_lost += 1;
        self.check_nonneg();
    }

    /// A copy entered a middlebox ring.
    #[inline]
    pub fn mbox_buffer(&mut self) {
        self.in_transit -= 1;
        self.buffered += 1;
        self.check_nonneg();
    }

    /// A ring rollover displaced the oldest buffered copy.
    #[inline]
    pub fn mbox_rollover(&mut self) {
        self.buffered -= 1;
        self.rolled_over += 1;
        self.check_nonneg();
    }

    /// A middlebox in streaming state forwarded a live copy: it stays in
    /// transit (ingest leg ends, forward leg begins).
    #[inline]
    pub fn mbox_forward_live(&mut self) {
        // in_transit -1 (ingest completes) +1 (forward departs): no change,
        // but assert the stage is coherent.
        sim_assert!(self.in_transit > 0, "middlebox forwarded a copy that was not in transit");
    }

    /// A `start` request drained the ring: `forwarded` copies head for the
    /// secondary AP, `stale` copies (older than the request) are discarded.
    #[inline]
    pub fn mbox_drain(&mut self, forwarded: usize, stale: usize) {
        self.buffered -= (forwarded + stale) as i64;
        self.in_transit += forwarded as i64;
        self.stale_dropped += stale as i64;
        self.check_nonneg();
    }

    /// A copy arrived at a middlebox whose process is down (or whose SDN
    /// replication rule is not installed yet after a restart): discarded
    /// at the door instead of being buffered.
    #[inline]
    pub fn mbox_discard(&mut self) {
        self.in_transit -= 1;
        self.stale_dropped += 1;
        self.check_nonneg();
    }

    /// Copies that reached a terminal fate.
    pub fn terminal(&self) -> i64 {
        self.delivered
            + self.delivered_unheard
            + self.air_lost
            + self.queue_dropped
            + self.rolled_over
            + self.stale_dropped
    }

    /// Copies still in some stage of the network (in flight at the horizon).
    pub fn in_flight(&self) -> i64 {
        self.in_transit + self.queued + self.in_tx + self.buffered
    }

    /// End-of-run audit: the conservation identity must close, and the
    /// ledger's queue/ring occupancy must match the devices' ground truth.
    ///
    /// * `queued_truth` — total frames actually sitting in the audited AP
    ///   queues (driver + hardware) at the horizon.
    /// * `buffered_truth` — packets actually in the audited middlebox rings.
    /// * `max_in_tx` — upper bound on concurrently transmitting copies
    ///   (one per radio).
    pub fn finalize(&self, queued_truth: usize, buffered_truth: usize, max_in_tx: i64) {
        if !enabled() {
            return;
        }
        sim_assert_eq!(
            self.queued,
            queued_truth as i64,
            "AP queue occupancy diverged from ledger: ledger {} vs device {} ({self:?})",
            self.queued,
            queued_truth
        );
        sim_assert_eq!(
            self.buffered,
            buffered_truth as i64,
            "middlebox ring occupancy diverged from ledger: ledger {} vs device {} ({self:?})",
            self.buffered,
            buffered_truth
        );
        sim_assert!(
            self.in_tx >= 0 && self.in_tx <= max_in_tx,
            "in-tx copies out of range: {} (max {max_in_tx})",
            self.in_tx
        );
        sim_assert!(self.in_transit >= 0, "negative in-transit count: {}", self.in_transit);
        sim_assert_eq!(
            self.emitted,
            self.terminal() + self.in_flight(),
            "packet conservation violated: emitted {} != terminal {} + in-flight {} ({self:?})",
            self.emitted,
            self.terminal(),
            self.in_flight()
        );
    }
}

/// Conservation ledger for uplink input ticks (the FPS workload's
/// client→server packet class). Much simpler than [`PacketLedger`] —
/// a tick's fate is decided at emission time (delivered after bounded
/// retries, lost on the air, or blacked out because the client had no
/// usable radio) — but the same contract holds: counter updates are
/// unconditional and behaviour-neutral; the closure assertion is gated
/// on [`enabled`].
#[derive(Clone, Copy, Debug, Default)]
pub struct TickLedger {
    /// Ticks the client fired.
    pub emitted: i64,
    /// Ticks that reached the server.
    pub delivered: i64,
    /// Ticks whose every transmission attempt died on the air.
    pub lost: i64,
    /// Ticks fired while the client was mid-retune with no association —
    /// never transmitted at all.
    pub blackout: i64,
}

impl TickLedger {
    /// A fresh ledger.
    pub fn new() -> TickLedger {
        TickLedger::default()
    }

    /// The client fired a tick.
    #[inline]
    pub fn emit(&mut self) {
        self.emitted += 1;
    }

    /// The tick reached the server.
    #[inline]
    pub fn delivered(&mut self) {
        self.delivered += 1;
    }

    /// Every attempt died on the air.
    #[inline]
    pub fn lost(&mut self) {
        self.lost += 1;
    }

    /// No radio to transmit on.
    #[inline]
    pub fn blackout(&mut self) {
        self.blackout += 1;
    }

    /// Every emitted tick must have reached exactly one fate.
    pub fn finalize(&self) {
        if !enabled() {
            return;
        }
        sim_assert_eq!(
            self.emitted,
            self.delivered + self.lost + self.blackout,
            "tick conservation violated: emitted {} != delivered {} + lost {} + blackout {}",
            self.emitted,
            self.delivered,
            self.lost,
            self.blackout
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiled_in_matches_build_config() {
        // Debug/test builds carry the layer via debug_assertions; release
        // only with the audit feature (the CI audit job's configuration).
        assert_eq!(AUDIT_COMPILED, cfg!(any(debug_assertions, feature = "audit")));
    }

    #[test]
    fn capture_panic_returns_values_and_harvests_messages() {
        assert_eq!(capture_panic(|| 41 + 1), Ok(42));
        let err = capture_panic(|| -> u32 { panic!("boom {}", 7) }).unwrap_err();
        assert_eq!(err, "boom 7");
        if AUDIT_COMPILED {
            // A tripped sim_assert surfaces as a capturable message too.
            let err = capture_panic(|| sim_assert!(1 == 2, "bad math")).unwrap_err();
            assert!(err.contains("simulation invariant violated"), "{err}");
            assert!(err.contains("bad math"), "{err}");
        }
    }

    #[test]
    fn sim_assert_fires_when_enabled() {
        if !AUDIT_COMPILED {
            return; // nothing to catch in an audit-free build
        }
        let r = std::panic::catch_unwind(|| {
            crate::sim_assert!(1 + 1 == 3, "arithmetic broke: {}", 42);
        });
        let msg = *r.expect_err("must panic").downcast::<String>().unwrap();
        assert!(msg.contains("simulation invariant violated"), "{msg}");
        assert!(msg.contains("arithmetic broke: 42"), "{msg}");
    }

    #[test]
    fn sim_assert_eq_reports_both_sides() {
        if !AUDIT_COMPILED {
            return; // nothing to catch in an audit-free build
        }
        let r = std::panic::catch_unwind(|| {
            crate::sim_assert_eq!(2 + 2, 5);
        });
        let msg = *r.expect_err("must panic").downcast::<String>().unwrap();
        assert!(msg.contains("4 vs 5"), "{msg}");
    }

    #[test]
    fn suspended_checks_do_not_fire() {
        // NOTE: the switch is global; keep the suspended window tiny and
        // restore before asserting anything else.
        set_enabled(false);
        crate::sim_assert!(false, "must not fire while suspended");
        set_enabled(true);
        assert_eq!(enabled(), AUDIT_COMPILED);
    }

    #[test]
    fn ledger_happy_path_conserves() {
        let mut l = PacketLedger::new();
        for _ in 0..3 {
            l.emit();
        }
        l.enqueue_ok();
        l.enqueue_rejected();
        l.enqueue_ok();
        l.tx_start();
        l.tx_heard();
        l.tx_start();
        l.tx_lost();
        assert_eq!(l.terminal(), 3);
        assert_eq!(l.in_flight(), 0);
        l.finalize(0, 0, 2);
    }

    #[test]
    fn ledger_head_drop_keeps_occupancy() {
        let mut l = PacketLedger::new();
        for _ in 0..6 {
            l.emit();
        }
        for _ in 0..5 {
            l.enqueue_ok();
        }
        l.enqueue_displaced();
        assert_eq!(l.queued, 5);
        assert_eq!(l.queue_dropped, 1);
        l.finalize(5, 0, 1);
    }

    #[test]
    fn ledger_middlebox_flow() {
        let mut l = PacketLedger::new();
        for _ in 0..4 {
            l.emit();
        }
        l.mbox_buffer();
        l.mbox_buffer();
        l.mbox_buffer();
        l.mbox_rollover();
        // start(from_seq) drains: 1 forwarded, 1 stale.
        l.mbox_drain(1, 1);
        // The forwarded copy reaches the secondary AP.
        l.enqueue_ok();
        l.tx_start();
        l.tx_heard();
        // The 4th emitted copy is still on the LAN at the horizon.
        assert_eq!(l.in_transit, 1);
        l.finalize(0, 0, 1);
    }

    #[test]
    fn ledger_catches_occupancy_divergence() {
        if !AUDIT_COMPILED {
            return; // nothing to catch in an audit-free build
        }
        let mut l = PacketLedger::new();
        l.emit();
        l.enqueue_ok();
        let r = std::panic::catch_unwind(move || l.finalize(0, 0, 1));
        assert!(r.is_err(), "a forgotten dequeue must be caught at finalize");
    }

    #[test]
    fn ledger_catches_negative_stage() {
        if !AUDIT_COMPILED {
            return; // nothing to catch in an audit-free build
        }
        let mut l = PacketLedger::new();
        let r = std::panic::catch_unwind(move || l.tx_heard());
        assert!(r.is_err(), "tx without a queued copy must be caught");
    }

    #[test]
    fn ledger_middlebox_restart_wipe_and_door_discard() {
        let mut l = PacketLedger::new();
        for _ in 0..3 {
            l.emit();
        }
        // Two copies buffered before the restart, one in transit.
        l.mbox_buffer();
        l.mbox_buffer();
        // Restart wipes the ring (2 stale) …
        l.mbox_drain(0, 2);
        // … and the in-transit copy arrives while the process is down.
        l.mbox_discard();
        assert_eq!(l.stale_dropped, 3);
        assert_eq!(l.in_flight(), 0);
        l.finalize(0, 0, 1);
    }

    #[test]
    fn ledger_reboot_flush() {
        let mut l = PacketLedger::new();
        for _ in 0..4 {
            l.emit();
            l.enqueue_ok();
        }
        l.flushed(4);
        assert_eq!(l.queue_dropped, 4);
        l.finalize(0, 0, 1);
    }

    #[test]
    fn tick_ledger_closes_over_all_fates() {
        let mut l = TickLedger::new();
        for _ in 0..5 {
            l.emit();
        }
        l.delivered();
        l.delivered();
        l.lost();
        l.blackout();
        l.delivered();
        l.finalize();
    }

    #[test]
    fn tick_ledger_catches_unaccounted_tick() {
        if !AUDIT_COMPILED {
            return; // nothing to catch in an audit-free build
        }
        let mut l = TickLedger::new();
        l.emit();
        l.emit();
        l.delivered();
        let r = std::panic::catch_unwind(move || l.finalize());
        assert!(r.is_err(), "an emitted tick with no fate must be caught");
    }
}
