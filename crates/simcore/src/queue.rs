//! Deterministic event queue for the discrete-event engine.
//!
//! Events scheduled for the same instant are delivered in the order they were
//! scheduled (FIFO tie-break via a monotonically increasing sequence number),
//! so a simulation run is a pure function of (scenario, seed) — never of heap
//! internals or hash ordering.
//!
//! Cancellation is O(1): each scheduled event owns a slot in a generation-
//! stamped slab, and cancelling flips the slot's liveness flag; the pending
//! entry is discarded lazily when it reaches the head. A stale [`EventId`]
//! (already fired, or already cancelled) fails the generation check and the
//! cancel is a true no-op — it can never skew [`EventQueue::len`].
//!
//! # Backends
//!
//! Two storage backends implement the identical pop order (global minimum
//! `(at, seq)`), selectable per queue via [`QueueBackend`]:
//!
//! - **Heap** (default): a binary heap. O(log n) schedule/pop regardless
//!   of the time distribution — the safe general-purpose choice.
//! - **Calendar**: a calendar wheel of [`DAY_NANOS`]-wide buckets spanning
//!   [`WHEEL_DAYS`] days from the current clock, with a heap for events
//!   beyond the span. Events land in their day's bucket at schedule time
//!   (sorted insertion into a short vector); pop takes the tail of the
//!   first non-empty bucket at-or-after `now`, so the dense-timer regime
//!   the world model generates (20 ms VoIP ticks, sub-ms MAC service
//!   chains, keepalives and probes) schedules and pops in O(1) with no
//!   heap rebalancing on the hot path. Far-future events (call teardown,
//!   keepalive periods beyond the span) stay in the overflow heap and are
//!   compared against the wheel head at pop.
//!
//! The two backends are pinned pop-order-identical by a differential test
//! below and by the model-based proptest in `lib.rs`, which runs against
//! both.
//!
//! The slab, generation stamps, FIFO tie-break, `len`/`peek_time`
//! semantics and the schedule-in-the-past panic are backend-independent:
//! the backend only decides *where* a pending entry waits.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Width of one calendar bucket, in nanoseconds (250 µs). Chosen so one
/// VoIP tick's burst of MAC events (service times are tens to hundreds of
/// µs) spreads over a handful of buckets instead of piling into one.
pub const DAY_NANOS: u64 = 250_000;

/// Number of buckets in the calendar wheel. Span = `DAY_NANOS *
/// WHEEL_DAYS` = 128 ms: comfortably covers the 20 ms tick cadence, the
/// 50 ms TCP timer and per-frame retry backoffs; anything further out
/// (keepalives, call teardown) waits in the overflow heap.
pub const WHEEL_DAYS: u64 = 512;

/// Words in the wheel's occupancy bitmap (one bit per bucket).
const OCC_WORDS: usize = WHEEL_DAYS as usize / 64;

/// A handle to a scheduled event, usable for cancellation.
///
/// Encodes (slot, generation); a handle outlives its event harmlessly —
/// cancelling after the event fired is a no-op.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, gen: u32) -> EventId {
        EventId((slot as u64) << 32 | gen as u64)
    }

    fn slot(self) -> u32 {
        (self.0 >> 32) as u32
    }

    fn gen(self) -> u32 {
        self.0 as u32
    }
}

/// The ordering key of one pending event. Payloads live in the slab
/// (`EventQueue::events`), so the heap/wheel shuffle 24-byte keys instead
/// of full event values — sift swaps and bucket memmoves stay cheap no
/// matter how large the caller's event enum is.
#[derive(Clone, Copy)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    slot: u32,
}

// BinaryHeap is a max-heap; invert the ordering so the earliest (time, seq)
// pops first.
impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// One slab slot: the generation of the handle it currently backs, and
/// whether that event is still due to fire. A slot is freed (and its
/// generation bumped) only when its pending entry drains, so slot indices
/// held by the backend are always valid.
#[derive(Clone, Copy)]
struct Slot {
    gen: u32,
    live: bool,
}

/// Which storage backend a queue uses. Pop order is identical; only the
/// complexity profile differs (see the [module docs](self)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueBackend {
    /// Binary heap: O(log n) schedule/pop, robust to any time
    /// distribution. The default.
    #[default]
    Heap,
    /// Calendar wheel + overflow heap: O(1) schedule/pop in the
    /// dense-timer regime where most events land within the wheel span
    /// of the clock.
    Calendar,
}

/// The calendar-wheel storage: near events bucketed by "day" (a
/// [`DAY_NANOS`]-wide slice of time), far events in an overflow heap.
///
/// Invariant: since every pending event satisfies `at >= now` and events
/// are only bucketed when their day is within [`WHEEL_DAYS`] of the
/// schedule-time clock, every bucketed event's day lies in
/// `[now/DAY_NANOS, now/DAY_NANOS + WHEEL_DAYS)` — so each bucket holds
/// events of exactly one day, and a forward scan from `now`'s bucket
/// visits days in increasing order.
struct CalendarWheel {
    /// `buckets[day % WHEEL_DAYS]`, each sorted by `(at, seq)`
    /// *descending* so the bucket minimum pops from the back in O(1).
    /// Allocated lazily on first use.
    buckets: Vec<Vec<Scheduled>>,
    /// One bit per bucket: set iff the bucket is non-empty. Pop finds the
    /// next occupied bucket with a handful of word scans instead of
    /// walking up to [`WHEEL_DAYS`] empty vectors between sparse events.
    occ: [u64; OCC_WORDS],
    /// Total entries across buckets (live + lazily-cancelled).
    bucketed: usize,
    /// Events beyond the wheel span, in a min-(at, seq) heap.
    overflow: BinaryHeap<Scheduled>,
}

impl CalendarWheel {
    fn new() -> CalendarWheel {
        CalendarWheel {
            buckets: Vec::new(),
            occ: [0; OCC_WORDS],
            bucketed: 0,
            overflow: BinaryHeap::new(),
        }
    }

    fn entries(&self) -> usize {
        self.bucketed + self.overflow.len()
    }

    fn clear_occ(&mut self, idx: usize) {
        self.occ[idx >> 6] &= !(1u64 << (idx & 63));
    }

    /// First occupied bucket in circular day order starting at `start`.
    ///
    /// The wheel invariant (every bucketed event's day lies within
    /// [`WHEEL_DAYS`] of `now`'s day) makes the circular order from
    /// `now`'s bucket exactly the increasing-day order, so the first
    /// occupied bucket found holds the wheel's earliest day.
    fn next_occupied(&self, start: usize) -> Option<usize> {
        if self.bucketed == 0 {
            return None;
        }
        let word0 = start >> 6;
        let w = self.occ[word0] & (!0u64 << (start & 63));
        if w != 0 {
            return Some((word0 << 6) + w.trailing_zeros() as usize);
        }
        for step in 1..=OCC_WORDS {
            let wi = (word0 + step) % OCC_WORDS;
            let mut w = self.occ[wi];
            if step == OCC_WORDS {
                // Wrapped all the way back: only the bits below `start`.
                w &= !(!0u64 << (start & 63));
            }
            if w != 0 {
                return Some((wi << 6) + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Store one entry: sorted-insert into its day's bucket if the day is
    /// within the wheel span of `now`, overflow heap otherwise.
    fn insert(&mut self, s: Scheduled, now: SimTime) {
        let day = s.at.as_nanos() / DAY_NANOS;
        let day0 = now.as_nanos() / DAY_NANOS;
        if day < day0 + WHEEL_DAYS {
            if self.buckets.is_empty() {
                self.buckets.resize_with(WHEEL_DAYS as usize, Vec::new);
            }
            let idx = (day % WHEEL_DAYS) as usize;
            let bucket = &mut self.buckets[idx];
            // Descending order; (at, seq) is unique, so no equal keys.
            let pos = bucket.partition_point(|e| (e.at, e.seq) > (s.at, s.seq));
            bucket.insert(pos, s);
            self.occ[idx >> 6] |= 1u64 << (idx & 63);
            self.bucketed += 1;
        } else {
            self.overflow.push(s);
        }
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.occ = [0; OCC_WORDS];
        self.bucketed = 0;
        self.overflow.clear();
    }
}

/// The wheel's live minimum: `(at, seq, bucket index)`.
type WheelHead = (SimTime, u64, usize);
/// The overflow heap's live minimum key: `(at, seq)`.
type OverflowHead = (SimTime, u64);

/// Backend storage for pending entries (ordering keys only — payloads
/// stay in the owning queue's slab).
enum Backend {
    Heap(BinaryHeap<Scheduled>),
    Calendar(CalendarWheel),
}

/// A time-ordered queue of events of type `E`.
///
/// This is the only scheduling primitive in the simulator. Higher layers
/// define their own event enums and drive a loop:
///
/// ```
/// use diversifi_simcore::{EventQueue, SimTime, SimDuration};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Tick(u32) }
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(20), Ev::Tick(1));
/// q.schedule(SimTime::from_millis(10), Ev::Tick(0));
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!(t, SimTime::from_millis(10));
/// assert_eq!(ev, Ev::Tick(0));
/// ```
pub struct EventQueue<E> {
    backend: Backend,
    slots: Vec<Slot>,
    /// Payload slab, parallel to `slots`: `events[slot]` holds the value
    /// scheduled under that slot until it pops (or its cancelled entry
    /// drains). Keeping payloads out of the backend means heap sifts and
    /// bucket inserts move 24-byte keys, not whole event enums.
    events: Vec<Option<E>>,
    free: Vec<u32>,
    /// Pending entries whose slot was cancelled (they drain lazily).
    cancelled: usize,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`], on the default
    /// heap backend.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue pre-sized for `cap` pending events, so steady-state
    /// scheduling never reallocates the heap or the slot slab.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            backend: Backend::Heap(BinaryHeap::with_capacity(cap)),
            slots: Vec::with_capacity(cap),
            events: Vec::with_capacity(cap),
            free: Vec::new(),
            cancelled: 0,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// An empty queue on the chosen backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        let mut q = Self::new();
        q.set_backend(backend);
        q
    }

    /// Which backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.backend {
            Backend::Heap(_) => QueueBackend::Heap,
            Backend::Calendar(_) => QueueBackend::Calendar,
        }
    }

    /// Switch an **empty** queue to `backend` (no-op if it already runs
    /// on it, preserving pooled capacity across arena reuse).
    ///
    /// # Panics
    /// If events are pending: entries cannot be moved between backends
    /// without perturbing the slab, and no caller needs that.
    pub fn set_backend(&mut self, backend: QueueBackend) {
        assert!(self.is_empty(), "cannot switch backend with events pending");
        match (&mut self.backend, backend) {
            (Backend::Heap(_), QueueBackend::Heap)
            | (Backend::Calendar(_), QueueBackend::Calendar) => {}
            (b, QueueBackend::Heap) => *b = Backend::Heap(BinaryHeap::new()),
            (b, QueueBackend::Calendar) => *b = Backend::Calendar(CalendarWheel::new()),
        }
    }

    /// Clear everything — pending events, slab, clock, sequence counter —
    /// while keeping allocated capacity (and the backend choice). A reset
    /// queue is observationally identical to a fresh one; this is what
    /// makes queues poolable in a [`WorkerArena`](crate::WorkerArena)
    /// without breaking run-to-run determinism.
    pub fn reset(&mut self) {
        match &mut self.backend {
            Backend::Heap(h) => h.clear(),
            Backend::Calendar(w) => w.clear(),
        }
        self.slots.clear();
        self.events.clear();
        self.free.clear();
        self.cancelled = 0;
        self.next_seq = 0;
        self.now = SimTime::ZERO;
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        let entries = match &self.backend {
            Backend::Heap(h) => h.len(),
            Backend::Calendar(w) => w.entries(),
        };
        entries - self.cancelled
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocate a slab slot for a new entry.
    fn alloc_slot(&mut self) -> u32 {
        match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].live = true;
                s
            }
            None => {
                self.slots.push(Slot { gen: 0, live: true });
                self.events.push(None);
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller and panics: a
    /// discrete-event simulation that silently reorders causality produces
    /// quietly wrong results, which is worse than crashing.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduled event at {at:?} but simulation time is already {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.alloc_slot();
        self.events[slot as usize] = Some(event);
        let entry = Scheduled { at, seq, slot };
        match &mut self.backend {
            Backend::Heap(h) => h.push(entry),
            Backend::Calendar(w) => w.insert(entry, self.now),
        }
        EventId::new(slot, self.slots[slot as usize].gen)
    }

    /// Schedule `event` at `now() + delta` — the dominant caller pattern
    /// (frame service times, retry backoffs, periodic timers).
    pub fn schedule_after(&mut self, delta: SimDuration, event: E) -> EventId {
        self.schedule(self.now + delta, event)
    }

    /// Cancel a previously scheduled event. O(1): the slot is flagged dead
    /// and the pending entry is skipped when it reaches the head. Cancelling
    /// an already-fired or already-cancelled event is a true no-op (the
    /// generation check rejects stale handles).
    pub fn cancel(&mut self, id: EventId) {
        let slot = id.slot() as usize;
        if let Some(s) = self.slots.get_mut(slot) {
            if s.gen == id.gen() && s.live {
                s.live = false;
                self.cancelled += 1;
            }
        }
    }

    /// Free `slot` for reuse, invalidating all outstanding handles to it
    /// and dropping any payload still parked in the slab.
    fn release(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        s.live = false;
        self.events[slot as usize] = None;
        self.free.push(slot);
    }

    /// Pop the earliest pending event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let popped = match &mut self.backend {
            Backend::Heap(_) => self.pop_heap(),
            Backend::Calendar(_) => self.pop_calendar(),
        };
        if let Some((at, _)) = &popped {
            crate::sim_assert!(
                *at >= self.now,
                "event queue produced time travel: popped {:?} with clock at {:?}",
                at,
                self.now
            );
            self.now = *at;
        }
        popped
    }

    fn pop_heap(&mut self) -> Option<(SimTime, E)> {
        let EventQueue { backend, slots, events, free, cancelled, .. } = self;
        let Backend::Heap(heap) = backend else { unreachable!() };
        loop {
            let s = heap.pop()?;
            let slot = &mut slots[s.slot as usize];
            let live = slot.live;
            slot.gen = slot.gen.wrapping_add(1);
            slot.live = false;
            let ev = events[s.slot as usize].take();
            free.push(s.slot);
            if !live {
                *cancelled -= 1;
                continue;
            }
            return Some((s.at, ev.expect("live entry has payload")));
        }
    }

    /// Find the wheel's live minimum `(at, seq, bucket)`, draining dead
    /// tails (and overflow-heap heads) along the way.
    ///
    /// The occupancy bitmap jumps straight to the next non-empty bucket
    /// at-or-after `now`'s, so the scan cost is a few word operations
    /// rather than a walk over empty days. Each bucket holds one day's
    /// events sorted descending, so the first live tail found is the
    /// wheel minimum.
    fn calendar_heads(&mut self) -> (Option<WheelHead>, Option<OverflowHead>) {
        let EventQueue { backend, slots, events, free, cancelled, now, .. } = self;
        let Backend::Calendar(w) = backend else { unreachable!() };
        let start = ((now.as_nanos() / DAY_NANOS) % WHEEL_DAYS) as usize;
        let mut wheel_head = None;
        'scan: while let Some(idx) = w.next_occupied(start) {
            loop {
                let Some(tail) = w.buckets[idx].last() else {
                    w.clear_occ(idx);
                    continue 'scan;
                };
                if slots[tail.slot as usize].live {
                    wheel_head = Some((tail.at, tail.seq, idx));
                    break 'scan;
                }
                let dead = w.buckets[idx].pop().expect("tail vanished");
                w.bucketed -= 1;
                *cancelled -= 1;
                let slot = &mut slots[dead.slot as usize];
                slot.gen = slot.gen.wrapping_add(1);
                events[dead.slot as usize] = None;
                free.push(dead.slot);
            }
        }
        // Overflow head: drain dead entries off the heap top.
        while let Some(head) = w.overflow.peek() {
            if slots[head.slot as usize].live {
                break;
            }
            let dead = w.overflow.pop().expect("peeked entry vanished");
            *cancelled -= 1;
            let slot = &mut slots[dead.slot as usize];
            slot.gen = slot.gen.wrapping_add(1);
            events[dead.slot as usize] = None;
            free.push(dead.slot);
        }
        (wheel_head, w.overflow.peek().map(|h| (h.at, h.seq)))
    }

    fn pop_calendar(&mut self) -> Option<(SimTime, E)> {
        let (wheel_head, overflow_key) = self.calendar_heads();
        let from_wheel = match (wheel_head, overflow_key) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some((at, seq, _)), Some(okey)) => (at, seq) < okey,
        };
        let Backend::Calendar(w) = &mut self.backend else { unreachable!() };
        let s = if from_wheel {
            let (_, _, idx) = wheel_head.expect("wheel head chosen");
            w.bucketed -= 1;
            let s = w.buckets[idx].pop().expect("wheel head vanished");
            if w.buckets[idx].is_empty() {
                w.clear_occ(idx);
            }
            s
        } else {
            w.overflow.pop().expect("overflow head vanished")
        };
        let ev = self.events[s.slot as usize].take();
        self.release(s.slot);
        Some((s.at, ev.expect("live entry has payload")))
    }

    /// Timestamp of the earliest pending event without popping it.
    ///
    /// Cancelled entries at the head are drained as they are discovered,
    /// so repeated peeks stay cheap.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.backend {
            Backend::Heap(_) => loop {
                let Backend::Heap(heap) = &mut self.backend else { unreachable!() };
                let head = heap.peek()?;
                if self.slots[head.slot as usize].live {
                    return Some(head.at);
                }
                let dead = heap.pop().expect("peeked entry vanished");
                self.release(dead.slot);
                self.cancelled -= 1;
            },
            Backend::Calendar(_) => {
                // Same head selection as pop_calendar, without removal.
                let (wheel_head, overflow_key) = self.calendar_heads();
                match (wheel_head.map(|(at, seq, _)| (at, seq)), overflow_key) {
                    (None, None) => None,
                    (Some((at, _)), None) => Some(at),
                    (None, Some((at, _))) => Some(at),
                    (Some(wkey), Some(okey)) => Some(wkey.min(okey).0),
                }
            }
        }
    }
}

impl<E: 'static> crate::arena::Recycle for EventQueue<E> {
    fn fresh() -> Self {
        EventQueue::new()
    }
    fn recycle(&mut self) {
        self.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[derive(Debug, PartialEq, Clone, Copy)]
    struct Tag(u32);

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), Tag(3));
        q.schedule(SimTime::from_millis(10), Tag(1));
        q.schedule(SimTime::from_millis(20), Tag(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, t)| t.0).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, Tag(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, t)| t.0).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), Tag(0));
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "scheduled event at")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), Tag(0));
        q.pop();
        q.schedule(SimTime::from_millis(5), Tag(1));
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), Tag(1));
        q.schedule(SimTime::from_millis(2), Tag(2));
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, Tag(2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), Tag(1));
        assert_eq!(q.pop().unwrap().1, Tag(1));
        q.cancel(a); // must not affect later events
        q.schedule(SimTime::from_millis(2), Tag(2));
        assert_eq!(q.pop().unwrap().1, Tag(2));
    }

    #[test]
    fn cancel_after_fire_keeps_len_consistent() {
        // Regression: cancelling fired events used to insert tombstones
        // that never drained, permanently skewing len()/is_empty() and
        // eventually underflowing the length arithmetic.
        let mut q = EventQueue::new();
        let ids: Vec<_> =
            (0..8).map(|i| q.schedule(SimTime::from_millis(i), Tag(i as u32))).collect();
        for _ in 0..8 {
            q.pop().unwrap();
        }
        assert!(q.is_empty());
        for id in &ids {
            q.cancel(*id); // all stale — every one must be a no-op
        }
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        q.schedule(SimTime::from_millis(100), Tag(42));
        assert_eq!(q.len(), 1, "stale cancels must not offset live counts");
        assert_eq!(q.pop().unwrap().1, Tag(42));
    }

    #[test]
    fn double_cancel_counted_once() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), Tag(1));
        q.schedule(SimTime::from_millis(2), Tag(2));
        q.cancel(a);
        q.cancel(a);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, Tag(2));
    }

    #[test]
    fn stale_handle_does_not_cancel_slot_reuser() {
        // After an event fires its slot is recycled; the old handle's
        // generation no longer matches and must not kill the new tenant.
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), Tag(1));
        q.pop().unwrap();
        let _b = q.schedule(SimTime::from_millis(2), Tag(2)); // reuses a's slot
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, Tag(2), "stale cancel must not hit reused slot");
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), Tag(1));
        q.schedule(SimTime::from_millis(3), Tag(3));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
    }

    #[test]
    fn peek_time_drains_cancelled_head_and_preserves_len() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), Tag(1));
        let b = q.schedule(SimTime::from_millis(2), Tag(2));
        q.schedule(SimTime::from_millis(3), Tag(3));
        q.cancel(a);
        q.cancel(b);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, Tag(3));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn schedule_after_uses_current_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), Tag(0));
        q.pop().unwrap();
        q.schedule_after(SimDuration::from_millis(20), Tag(1));
        assert_eq!(q.pop().unwrap().0, SimTime::from_millis(30));
    }

    #[test]
    fn schedule_after_is_cancellable_and_fifo() {
        let mut q = EventQueue::new();
        let a = q.schedule_after(SimDuration::from_millis(5), Tag(1));
        q.schedule_after(SimDuration::from_millis(5), Tag(2));
        q.cancel(a);
        assert_eq!(q.pop().unwrap().1, Tag(2));
    }

    #[test]
    fn relative_scheduling_pattern() {
        // The common caller pattern: schedule "now + d".
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), Tag(0));
        let (now, _) = q.pop().unwrap();
        q.schedule(now + SimDuration::from_millis(20), Tag(1));
        assert_eq!(q.pop().unwrap().0, SimTime::from_millis(30));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10)
            .map(|i| q.schedule(SimTime::from_millis(i), Tag(i as u32)))
            .collect();
        for id in &ids[..4] {
            q.cancel(*id);
        }
        assert_eq!(q.len(), 6);
        assert!(!q.is_empty());
    }

    #[test]
    fn with_capacity_behaves_identically() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::with_capacity(64);
        for i in 0..32u32 {
            a.schedule(SimTime::from_millis((i % 7) as u64), Tag(i));
            b.schedule(SimTime::from_millis((i % 7) as u64), Tag(i));
        }
        loop {
            match (a.pop(), b.pop()) {
                (None, None) => break,
                (x, y) => assert_eq!(x, y),
            }
        }
    }

    /// Run `f` once per backend, so behaviors are pinned on both.
    fn for_both_backends(f: impl Fn(EventQueue<Tag>)) {
        f(EventQueue::with_backend(QueueBackend::Heap));
        f(EventQueue::with_backend(QueueBackend::Calendar));
    }

    #[test]
    fn both_backends_pop_in_time_order_with_fifo_ties() {
        for_both_backends(|mut q| {
            q.schedule(SimTime::from_millis(30), Tag(3));
            q.schedule(SimTime::from_millis(10), Tag(1));
            q.schedule(SimTime::from_millis(10), Tag(2));
            // Far beyond the calendar wheel span — lands in overflow.
            q.schedule(SimTime::from_secs(300), Tag(9));
            q.schedule(SimTime::from_millis(20), Tag(4));
            let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, t)| t.0).collect();
            assert_eq!(order, vec![1, 2, 4, 3, 9], "backend {:?}", q.backend());
        });
    }

    #[test]
    fn both_backends_cancel_and_peek() {
        for_both_backends(|mut q| {
            let a = q.schedule(SimTime::from_millis(1), Tag(1));
            let b = q.schedule(SimTime::from_secs(200), Tag(2)); // overflow on calendar
            q.schedule(SimTime::from_millis(3), Tag(3));
            q.cancel(a);
            q.cancel(b);
            assert_eq!(q.len(), 1);
            assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
            assert_eq!(q.pop().unwrap().1, Tag(3));
            assert_eq!(q.peek_time(), None);
            assert!(q.pop().is_none());
        });
    }

    #[test]
    #[should_panic(expected = "scheduled event at")]
    fn calendar_scheduling_in_past_panics() {
        let mut q = EventQueue::with_backend(QueueBackend::Calendar);
        q.schedule(SimTime::from_millis(10), Tag(0));
        q.pop();
        q.schedule(SimTime::from_millis(5), Tag(1));
    }

    #[test]
    fn calendar_stale_handle_does_not_cancel_slot_reuser() {
        let mut q = EventQueue::with_backend(QueueBackend::Calendar);
        let a = q.schedule(SimTime::from_millis(1), Tag(1));
        q.pop().unwrap();
        let _b = q.schedule(SimTime::from_millis(2), Tag(2)); // reuses a's slot
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, Tag(2));
    }

    #[test]
    fn set_backend_requires_empty_and_reset_restores_fresh_state() {
        let mut q: EventQueue<Tag> = EventQueue::new();
        assert_eq!(q.backend(), QueueBackend::Heap);
        q.set_backend(QueueBackend::Calendar);
        assert_eq!(q.backend(), QueueBackend::Calendar);
        q.schedule(SimTime::from_millis(5), Tag(1));
        q.schedule(SimTime::from_secs(500), Tag(2));
        q.pop().unwrap();
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.backend(), QueueBackend::Calendar);
        // Sequence counter and slab restart from scratch: a reset queue
        // behaves exactly like a fresh one.
        q.schedule(SimTime::from_millis(1), Tag(7));
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), Tag(7))));
    }

    #[test]
    #[should_panic(expected = "cannot switch backend")]
    fn set_backend_panics_with_pending_events() {
        let mut q: EventQueue<Tag> = EventQueue::new();
        q.schedule(SimTime::from_millis(1), Tag(1));
        q.set_backend(QueueBackend::Calendar);
    }

    /// The satellite differential test: identical randomized
    /// schedule/cancel/pop interleavings — dense (timer-regime) and
    /// sparse (keepalive-regime) time distributions — must produce
    /// bit-identical pop sequences, lengths and peeks on both backends.
    #[test]
    fn heap_and_calendar_pop_order_is_identical() {
        // Deterministic xorshift so the test needs no external RNG.
        fn run(backend: QueueBackend, dense: bool) -> Vec<(SimTime, u32, usize)> {
            let mut state = 0xDEADBEEFCAFEu64 ^ (dense as u64);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut q = EventQueue::with_backend(backend);
            let mut handles: Vec<EventId> = Vec::new();
            let mut log = Vec::new();
            for round in 0..2_000u32 {
                match next() % 5 {
                    0..=2 => {
                        // Dense: sub-wheel-span deltas clustering like the
                        // VoIP tick burst. Sparse: up to 10 s, mostly
                        // overflow territory for the calendar.
                        let delta = if dense {
                            SimDuration::from_nanos(next() % 30_000_000)
                        } else {
                            SimDuration::from_nanos(next() % 10_000_000_000)
                        };
                        handles.push(q.schedule(q.now() + delta, Tag(round)));
                    }
                    3 => {
                        if !handles.is_empty() {
                            let k = (next() as usize) % handles.len();
                            q.cancel(handles.swap_remove(k));
                        }
                    }
                    _ => {
                        if let Some((at, tag)) = q.pop() {
                            log.push((at, tag.0, q.len()));
                        }
                    }
                }
                if next() % 7 == 0 {
                    if let Some(t) = q.peek_time() {
                        log.push((t, u32::MAX, q.len()));
                    }
                }
            }
            while let Some((at, tag)) = q.pop() {
                log.push((at, tag.0, q.len()));
            }
            log
        }
        for dense in [true, false] {
            let heap = run(QueueBackend::Heap, dense);
            let calendar = run(QueueBackend::Calendar, dense);
            assert_eq!(heap, calendar, "dense={dense}");
        }
    }

    #[test]
    fn heavy_churn_stays_consistent() {
        // Schedule/cancel/pop interleaving with slot reuse; len must track
        // exactly and ordering must hold throughout.
        let mut q = EventQueue::new();
        let mut live = std::collections::VecDeque::new();
        let mut expect_len = 0usize;
        for round in 0u64..200 {
            let id = q.schedule(SimTime::from_millis(round / 2 + 1), Tag(round as u32));
            live.push_back(id);
            expect_len += 1;
            if round % 3 == 0 {
                if let Some(id) = live.pop_front() {
                    q.cancel(id);
                    expect_len -= 1;
                }
            }
            if round % 5 == 0 && expect_len > 0 {
                // The earliest (time, seq) pending event is the oldest live
                // one: times are non-decreasing in schedule order here.
                let popped = q.pop();
                assert!(popped.is_some());
                expect_len -= 1;
                live.pop_front();
            }
            assert_eq!(q.len(), expect_len, "round {round}");
        }
    }
}
