//! Deterministic event queue for the discrete-event engine.
//!
//! Events scheduled for the same instant are delivered in the order they were
//! scheduled (FIFO tie-break via a monotonically increasing sequence number),
//! so a simulation run is a pure function of (scenario, seed) — never of heap
//! internals or hash ordering.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A handle to a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; invert the ordering so the earliest (time, seq)
// pops first.
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A time-ordered queue of events of type `E`.
///
/// This is the only scheduling primitive in the simulator. Higher layers
/// define their own event enums and drive a loop:
///
/// ```
/// use diversifi_simcore::{EventQueue, SimTime, SimDuration};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Tick(u32) }
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(20), Ev::Tick(1));
/// q.schedule(SimTime::from_millis(10), Ev::Tick(0));
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!(t, SimTime::from_millis(10));
/// assert_eq!(ev, Ev::Tick(0));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
    cancelled: Vec<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            cancelled: Vec::new(),
        }
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller and panics: a
    /// discrete-event simulation that silently reorders causality produces
    /// quietly wrong results, which is worse than crashing.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduled event at {at:?} but simulation time is already {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Cancellation is lazy (the entry
    /// is skipped when it reaches the head), which keeps `cancel` O(log n)
    /// amortised. Cancelling an already-fired or already-cancelled event is a
    /// no-op.
    pub fn cancel(&mut self, id: EventId) {
        // Binary-search keeps the cancelled list sorted for `is_cancelled`.
        if let Err(pos) = self.cancelled.binary_search(&id.0) {
            self.cancelled.insert(pos, id.0);
        }
    }

    fn take_cancelled(&mut self, seq: u64) -> bool {
        if let Ok(pos) = self.cancelled.binary_search(&seq) {
            self.cancelled.remove(pos);
            true
        } else {
            false
        }
    }

    /// Pop the earliest pending event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(s) = self.heap.pop() {
            if self.take_cancelled(s.seq) {
                continue;
            }
            debug_assert!(s.at >= self.now, "event queue produced time travel");
            self.now = s.at;
            return Some((s.at, s.event));
        }
        None
    }

    /// Timestamp of the earliest pending event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let seq = self.heap.peek()?.seq;
            if self.cancelled.binary_search(&seq).is_ok() {
                self.heap.pop();
                self.take_cancelled(seq);
                continue;
            }
            return Some(self.heap.peek().map(|s| s.at).unwrap());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[derive(Debug, PartialEq, Clone, Copy)]
    struct Tag(u32);

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), Tag(3));
        q.schedule(SimTime::from_millis(10), Tag(1));
        q.schedule(SimTime::from_millis(20), Tag(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, t)| t.0).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, Tag(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, t)| t.0).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), Tag(0));
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "scheduled event at")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), Tag(0));
        q.pop();
        q.schedule(SimTime::from_millis(5), Tag(1));
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), Tag(1));
        q.schedule(SimTime::from_millis(2), Tag(2));
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, Tag(2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), Tag(1));
        assert_eq!(q.pop().unwrap().1, Tag(1));
        q.cancel(a); // must not affect later events
        q.schedule(SimTime::from_millis(2), Tag(2));
        assert_eq!(q.pop().unwrap().1, Tag(2));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), Tag(1));
        q.schedule(SimTime::from_millis(3), Tag(3));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
    }

    #[test]
    fn relative_scheduling_pattern() {
        // The common caller pattern: schedule "now + d".
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), Tag(0));
        let (now, _) = q.pop().unwrap();
        q.schedule(now + SimDuration::from_millis(20), Tag(1));
        assert_eq!(q.pop().unwrap().0, SimTime::from_millis(30));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10)
            .map(|i| q.schedule(SimTime::from_millis(i), Tag(i as u32)))
            .collect();
        for id in &ids[..4] {
            q.cancel(*id);
        }
        assert_eq!(q.len(), 6);
        assert!(!q.is_empty());
    }
}
