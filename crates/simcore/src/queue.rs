//! Deterministic event queue for the discrete-event engine.
//!
//! Events scheduled for the same instant are delivered in the order they were
//! scheduled (FIFO tie-break via a monotonically increasing sequence number),
//! so a simulation run is a pure function of (scenario, seed) — never of heap
//! internals or hash ordering.
//!
//! Cancellation is O(1): each scheduled event owns a slot in a generation-
//! stamped slab, and cancelling flips the slot's liveness flag; the heap
//! entry is discarded lazily when it reaches the head. A stale [`EventId`]
//! (already fired, or already cancelled) fails the generation check and the
//! cancel is a true no-op — it can never skew [`EventQueue::len`].

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A handle to a scheduled event, usable for cancellation.
///
/// Encodes (slot, generation); a handle outlives its event harmlessly —
/// cancelling after the event fired is a no-op.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, gen: u32) -> EventId {
        EventId((slot as u64) << 32 | gen as u64)
    }

    fn slot(self) -> u32 {
        (self.0 >> 32) as u32
    }

    fn gen(self) -> u32 {
        self.0 as u32
    }
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    slot: u32,
    event: E,
}

// BinaryHeap is a max-heap; invert the ordering so the earliest (time, seq)
// pops first.
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// One slab slot: the generation of the handle it currently backs, and
/// whether that event is still due to fire. A slot is freed (and its
/// generation bumped) only when its heap entry drains, so slot indices in
/// the heap are always valid.
#[derive(Clone, Copy)]
struct Slot {
    gen: u32,
    live: bool,
}

/// A time-ordered queue of events of type `E`.
///
/// This is the only scheduling primitive in the simulator. Higher layers
/// define their own event enums and drive a loop:
///
/// ```
/// use diversifi_simcore::{EventQueue, SimTime, SimDuration};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Tick(u32) }
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(20), Ev::Tick(1));
/// q.schedule(SimTime::from_millis(10), Ev::Tick(0));
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!(t, SimTime::from_millis(10));
/// assert_eq!(ev, Ev::Tick(0));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Heap entries whose slot was cancelled (they drain lazily).
    cancelled: usize,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue pre-sized for `cap` pending events, so steady-state
    /// scheduling never reallocates the heap or the slot slab.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            cancelled: 0,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller and panics: a
    /// discrete-event simulation that silently reorders causality produces
    /// quietly wrong results, which is worse than crashing.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduled event at {at:?} but simulation time is already {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].live = true;
                s
            }
            None => {
                self.slots.push(Slot { gen: 0, live: true });
                (self.slots.len() - 1) as u32
            }
        };
        self.heap.push(Scheduled { at, seq, slot, event });
        EventId::new(slot, self.slots[slot as usize].gen)
    }

    /// Schedule `event` at `now() + delta` — the dominant caller pattern
    /// (frame service times, retry backoffs, periodic timers).
    pub fn schedule_after(&mut self, delta: SimDuration, event: E) -> EventId {
        let at = self.now + delta;
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].live = true;
                s
            }
            None => {
                self.slots.push(Slot { gen: 0, live: true });
                (self.slots.len() - 1) as u32
            }
        };
        self.heap.push(Scheduled { at, seq, slot, event });
        EventId::new(slot, self.slots[slot as usize].gen)
    }

    /// Cancel a previously scheduled event. O(1): the slot is flagged dead
    /// and the heap entry is skipped when it reaches the head. Cancelling an
    /// already-fired or already-cancelled event is a true no-op (the
    /// generation check rejects stale handles).
    pub fn cancel(&mut self, id: EventId) {
        let slot = id.slot() as usize;
        if let Some(s) = self.slots.get_mut(slot) {
            if s.gen == id.gen() && s.live {
                s.live = false;
                self.cancelled += 1;
            }
        }
    }

    /// Free `slot` for reuse, invalidating all outstanding handles to it.
    fn release(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        s.live = false;
        self.free.push(slot);
    }

    /// Pop the earliest pending event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(s) = self.heap.pop() {
            let live = self.slots[s.slot as usize].live;
            self.release(s.slot);
            if !live {
                self.cancelled -= 1;
                continue;
            }
            crate::sim_assert!(
                s.at >= self.now,
                "event queue produced time travel: popped {:?} with clock at {:?}",
                s.at,
                self.now
            );
            self.now = s.at;
            return Some((s.at, s.event));
        }
        None
    }

    /// Timestamp of the earliest pending event without popping it.
    ///
    /// A single `heap.peek()` per iteration: cancelled entries at the head
    /// are drained as they are discovered.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let head = self.heap.peek()?;
            if self.slots[head.slot as usize].live {
                return Some(head.at);
            }
            let dead = self.heap.pop().expect("peeked entry vanished");
            self.release(dead.slot);
            self.cancelled -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[derive(Debug, PartialEq, Clone, Copy)]
    struct Tag(u32);

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), Tag(3));
        q.schedule(SimTime::from_millis(10), Tag(1));
        q.schedule(SimTime::from_millis(20), Tag(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, t)| t.0).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, Tag(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, t)| t.0).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), Tag(0));
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "scheduled event at")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), Tag(0));
        q.pop();
        q.schedule(SimTime::from_millis(5), Tag(1));
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), Tag(1));
        q.schedule(SimTime::from_millis(2), Tag(2));
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, Tag(2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), Tag(1));
        assert_eq!(q.pop().unwrap().1, Tag(1));
        q.cancel(a); // must not affect later events
        q.schedule(SimTime::from_millis(2), Tag(2));
        assert_eq!(q.pop().unwrap().1, Tag(2));
    }

    #[test]
    fn cancel_after_fire_keeps_len_consistent() {
        // Regression: cancelling fired events used to insert tombstones
        // that never drained, permanently skewing len()/is_empty() and
        // eventually underflowing the length arithmetic.
        let mut q = EventQueue::new();
        let ids: Vec<_> =
            (0..8).map(|i| q.schedule(SimTime::from_millis(i), Tag(i as u32))).collect();
        for _ in 0..8 {
            q.pop().unwrap();
        }
        assert!(q.is_empty());
        for id in &ids {
            q.cancel(*id); // all stale — every one must be a no-op
        }
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        q.schedule(SimTime::from_millis(100), Tag(42));
        assert_eq!(q.len(), 1, "stale cancels must not offset live counts");
        assert_eq!(q.pop().unwrap().1, Tag(42));
    }

    #[test]
    fn double_cancel_counted_once() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), Tag(1));
        q.schedule(SimTime::from_millis(2), Tag(2));
        q.cancel(a);
        q.cancel(a);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, Tag(2));
    }

    #[test]
    fn stale_handle_does_not_cancel_slot_reuser() {
        // After an event fires its slot is recycled; the old handle's
        // generation no longer matches and must not kill the new tenant.
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), Tag(1));
        q.pop().unwrap();
        let _b = q.schedule(SimTime::from_millis(2), Tag(2)); // reuses a's slot
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, Tag(2), "stale cancel must not hit reused slot");
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), Tag(1));
        q.schedule(SimTime::from_millis(3), Tag(3));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
    }

    #[test]
    fn peek_time_drains_cancelled_head_and_preserves_len() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), Tag(1));
        let b = q.schedule(SimTime::from_millis(2), Tag(2));
        q.schedule(SimTime::from_millis(3), Tag(3));
        q.cancel(a);
        q.cancel(b);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, Tag(3));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn schedule_after_uses_current_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), Tag(0));
        q.pop().unwrap();
        q.schedule_after(SimDuration::from_millis(20), Tag(1));
        assert_eq!(q.pop().unwrap().0, SimTime::from_millis(30));
    }

    #[test]
    fn schedule_after_is_cancellable_and_fifo() {
        let mut q = EventQueue::new();
        let a = q.schedule_after(SimDuration::from_millis(5), Tag(1));
        q.schedule_after(SimDuration::from_millis(5), Tag(2));
        q.cancel(a);
        assert_eq!(q.pop().unwrap().1, Tag(2));
    }

    #[test]
    fn relative_scheduling_pattern() {
        // The common caller pattern: schedule "now + d".
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), Tag(0));
        let (now, _) = q.pop().unwrap();
        q.schedule(now + SimDuration::from_millis(20), Tag(1));
        assert_eq!(q.pop().unwrap().0, SimTime::from_millis(30));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10)
            .map(|i| q.schedule(SimTime::from_millis(i), Tag(i as u32)))
            .collect();
        for id in &ids[..4] {
            q.cancel(*id);
        }
        assert_eq!(q.len(), 6);
        assert!(!q.is_empty());
    }

    #[test]
    fn with_capacity_behaves_identically() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::with_capacity(64);
        for i in 0..32u32 {
            a.schedule(SimTime::from_millis((i % 7) as u64), Tag(i));
            b.schedule(SimTime::from_millis((i % 7) as u64), Tag(i));
        }
        loop {
            match (a.pop(), b.pop()) {
                (None, None) => break,
                (x, y) => assert_eq!(x, y),
            }
        }
    }

    #[test]
    fn heavy_churn_stays_consistent() {
        // Schedule/cancel/pop interleaving with slot reuse; len must track
        // exactly and ordering must hold throughout.
        let mut q = EventQueue::new();
        let mut live = std::collections::VecDeque::new();
        let mut expect_len = 0usize;
        for round in 0u64..200 {
            let id = q.schedule(SimTime::from_millis(round / 2 + 1), Tag(round as u32));
            live.push_back(id);
            expect_len += 1;
            if round % 3 == 0 {
                if let Some(id) = live.pop_front() {
                    q.cancel(id);
                    expect_len -= 1;
                }
            }
            if round % 5 == 0 && expect_len > 0 {
                // The earliest (time, seq) pending event is the oldest live
                // one: times are non-decreasing in schedule order here.
                let popped = q.pop();
                assert!(popped.is_some());
                expect_len -= 1;
                live.pop_front();
            }
            assert_eq!(q.len(), expect_len, "round {round}");
        }
    }
}
