//! # diversifi-simcore
//!
//! The discrete-event simulation core that every other crate in the
//! DiversiFi reproduction builds on:
//!
//! - [`SimTime`] / [`SimDuration`] — nanosecond virtual time newtypes.
//! - [`EventQueue`] — deterministic time-ordered event queue with FIFO
//!   tie-breaking and lazy cancellation.
//! - [`SeedFactory`] / [`RngStream`] — independent, reproducible random
//!   streams per component, so runs are pure functions of (scenario, seed)
//!   and A/B comparisons are paired.
//! - [`stats`] — summaries, ECDFs, burst histograms, auto-/cross-correlation
//!   (the machinery behind every figure in the paper).
//! - [`MetricsScratch`] — reusable per-worker buffers so corpus-scale
//!   metric evaluation runs allocation-free inside sweep workers.
//! - [`telemetry`] — zero-alloc structured tracing ([`TraceEvent`] is a
//!   32-byte `Copy` record), a [`metrics`] registry of counters / gauges /
//!   log-scale histograms, span-based event-loop self-profiling, and
//!   [`export`]ers (JSONL, Chrome trace-event / Perfetto, text tables).
//!   Compiled in for debug builds and `--features trace` release builds;
//!   otherwise the emission sites const-fold to no-ops.
//! - [`flight`] — the campaign flight recorder: a deterministic,
//!   thread-count-invariant top-K worst-call selector ([`WorstK`]) that
//!   rides the campaign fold, plus frozen forensic captures
//!   ([`FlightCapture`]) of the worst calls' full event timelines.
//! - [`check`] — the invariant-audit layer: [`sim_assert!`]/[`sim_assert_eq!`]
//!   plus the packet-conservation [`check::PacketLedger`], active in debug
//!   builds and `--features audit` release builds.
//! - [`fault`] — deterministic fault plans ([`FaultPlan`]): seed-stable
//!   schedules of AP power cycles and flaps, middlebox restarts, WAN/LAN
//!   brownouts, uplink outages and interference storms, expanded into flat
//!   impairment windows the world model schedules up front.
//! - [`chaos`] — adversarial fault-plan fuzzing: seeded plan generation
//!   under a [`ChaosBudget`], delta-debugging [`shrink_plan`]ning of
//!   violations to minimal reproducers, and the committed-corpus
//!   [`ChaosReproducer`] format.
//!
//! The design follows the smoltcp idiom: components are poll-driven state
//! machines with no I/O, no threads in the data path, and no wall-clock
//! reads; the event loop is owned by the caller.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library diagnostics go through `telemetry`, never stdout/stderr; CI's
// `clippy -D warnings` turns these into hard errors.
#![warn(clippy::print_stdout, clippy::print_stderr)]

pub mod arena;
pub mod campaign;
pub mod chaos;
pub mod check;
pub mod digest;
pub mod export;
pub mod fault;
pub mod flight;
pub mod merge;
pub mod metrics;
pub mod par;
mod queue;
mod rng;
pub mod scratch;
pub mod stats;
pub mod telemetry;
mod time;
mod trace;

pub use arena::WorkerArena;
pub use campaign::{
    run_campaign, run_campaign_observed, CampaignConfig, CampaignHealth, CampaignOutcome,
    CampaignProgress, HeartbeatSample, ShardQuarantine,
};
pub use chaos::{
    generate_plan, max_concurrency, outage_fraction, shrink_plan, ChaosBudget, ChaosReproducer,
    ShrinkOutcome, FAULT_KIND_COUNT, SHRINK_FLOOR,
};
pub use digest::{ChannelId, ChannelKind, DigestSchema, QuantileSketch, ShardDigest, Welford};
pub use fault::{FaultEffect, FaultKind, FaultOutcome, FaultPlan, FaultSpec, FaultWindow};
pub use flight::{FlightCapture, FlightKey, WorstK, FLIGHT_COMPILED};
pub use metrics::{LogHistogram, MetricsRegistry};
pub use par::SweepRunner;
pub use queue::{EventId, EventQueue, QueueBackend, DAY_NANOS, WHEEL_DAYS};
pub use rng::{RngStream, SeedFactory};
pub use scratch::MetricsScratch;
pub use stats::{
    autocorrelation, cross_correlation, mean, pearson, quantile_unsorted, BucketHistogram, Ecdf,
    Summary,
};
pub use telemetry::{MergedTelemetry, SweepEvent, TelemetrySession};
pub use time::{SimDuration, SimTime};
pub use trace::{
    ComponentId, ComponentKind, DecisionKind, FaultEdge, NullSink, RecordingSink, RingSink,
    TraceDetail, TraceEvent, TraceKind, TraceSink,
};

#[cfg(test)]
mod integration_tests {
    use super::*;

    /// A miniature end-to-end simulation: a periodic source scheduling its
    /// own next event, with random per-event jitter — exercising queue, time
    /// and RNG together the way the real world model does.
    #[test]
    fn periodic_source_with_jitter_is_deterministic() {
        fn run(seed: u64) -> Vec<u64> {
            let factory = SeedFactory::new(seed);
            let mut rng = factory.stream("jitter", 0);
            let mut q: EventQueue<u32> = EventQueue::new();
            q.schedule(SimTime::ZERO, 0);
            let mut arrivals = Vec::new();
            while let Some((now, n)) = q.pop() {
                arrivals.push(now.as_micros());
                if n < 50 {
                    let jitter = SimDuration::from_micros(rng.range_u64(0, 500));
                    q.schedule(now + SimDuration::from_millis(20) + jitter, n + 1);
                }
            }
            arrivals
        }
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed must give identical runs");
        assert_ne!(a, c, "different seeds should differ");
        assert_eq!(a.len(), 51);
        // Each arrival is 20ms..20.5ms after the previous one.
        for w in a.windows(2) {
            let gap = w[1] - w[0];
            assert!((20_000..20_500).contains(&gap), "gap {gap}us");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Events always pop in non-decreasing time order, regardless of the
        /// scheduling order.
        #[test]
        fn queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        /// FIFO tie-break: for equal timestamps, insertion order is preserved.
        #[test]
        fn queue_fifo_on_ties(n in 1usize..100) {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule(SimTime::from_millis(1), i);
            }
            let popped: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, i)| i).collect();
            prop_assert_eq!(popped, (0..n).collect::<Vec<_>>());
        }

        /// SimTime arithmetic is consistent: (t + d) - t == d.
        #[test]
        fn time_add_sub_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
            let time = SimTime::from_nanos(t);
            let dur = SimDuration::from_nanos(d);
            prop_assert_eq!((time + dur) - time, dur);
            prop_assert_eq!((time + dur).saturating_since(time), dur);
        }

        /// Quantile is always an element of the sample and at() of max is 1.
        #[test]
        fn ecdf_quantile_within_sample(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..300), q in 0.0f64..=1.0) {
            xs.iter_mut().for_each(|x| *x = x.floor());
            let e = Ecdf::new(xs.clone());
            let v = e.quantile(q);
            prop_assert!(xs.contains(&v));
            let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(e.at(max), 1.0);
        }

        /// Pearson is symmetric and bounded in [-1, 1].
        #[test]
        fn pearson_bounds(
            a in proptest::collection::vec(-100f64..100.0, 2..100),
        ) {
            let b: Vec<f64> = a.iter().map(|x| x * 2.0 + 1.0).collect();
            let ab = pearson(&a, &b);
            let ba = pearson(&b, &a);
            prop_assert!((-1.0001..=1.0001).contains(&ab));
            prop_assert!((ab - ba).abs() < 1e-9);
        }

        /// Seeded streams are reproducible for any seed/label.
        #[test]
        fn rng_streams_reproducible(seed in any::<u64>(), idx in 0u64..32) {
            let f = SeedFactory::new(seed);
            let mut a = f.stream("x", idx);
            let mut b = f.stream("x", idx);
            for _ in 0..16 {
                prop_assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
            }
        }

        /// Model-based check of the slab/generation event queue against a
        /// naive reference (a flat list popped by min `(at, seq)`): random
        /// interleavings of schedule / cancel / pop must agree on every
        /// popped timestamp and payload, on `len()`, on `peek_time()`, and
        /// cancelling an already-popped handle must stay a no-op. Runs the
        /// same operation sequence against **both** backends — the slab
        /// heap and the calendar wheel — so the model pins them equally.
        #[test]
        fn event_queue_matches_reference_model(
            ops in proptest::collection::vec(0u32..1_000_000, 1..300),
        ) {
            struct Ref {
                at: SimTime,
                seq: u64,
                tag: u64,
                live: bool,
            }
            for backend in [queue::QueueBackend::Heap, queue::QueueBackend::Calendar] {
            let mut q = EventQueue::with_backend(backend);
            let mut model: Vec<Ref> = Vec::new();
            // Outstanding (device handle, model index) pairs.
            let mut handles: Vec<(EventId, usize)> = Vec::new();
            let (mut seq, mut tag) = (0u64, 0u64);
            for op in &ops {
                let op = *op;
                match op % 4 {
                    0 | 1 => {
                        // Mostly sub-millisecond deltas, with an
                        // occasional far-future one so the calendar
                        // backend's overflow heap is exercised too.
                        let base = u64::from(op / 4) % 10_000;
                        let delta = if op % 97 == 0 {
                            SimDuration::from_nanos(base * 100_000_000)
                        } else {
                            SimDuration::from_nanos(base)
                        };
                        let at = q.now() + delta;
                        let id = q.schedule(at, tag);
                        model.push(Ref { at, seq, tag, live: true });
                        handles.push((id, model.len() - 1));
                        seq += 1;
                        tag += 1;
                    }
                    2 => {
                        if !handles.is_empty() {
                            let k = (op as usize / 4) % handles.len();
                            let (id, mi) = handles.swap_remove(k);
                            q.cancel(id);
                            model[mi].live = false;
                        }
                    }
                    _ => {
                        let best = model
                            .iter()
                            .enumerate()
                            .filter(|(_, m)| m.live)
                            .min_by_key(|(_, m)| (m.at, m.seq))
                            .map(|(i, _)| i);
                        let got = q.pop();
                        match best {
                            Some(i) => {
                                model[i].live = false;
                                prop_assert!(got.is_some(), "queue empty but model has live events");
                                let (t, v) = got.unwrap();
                                prop_assert_eq!(t, model[i].at);
                                prop_assert_eq!(v, model[i].tag);
                                // A handle to the popped event is now stale:
                                // cancelling it must change nothing.
                                if let Some(k) = handles.iter().position(|&(_, mi)| mi == i) {
                                    let (id, _) = handles.swap_remove(k);
                                    let before = q.len();
                                    q.cancel(id);
                                    prop_assert_eq!(q.len(), before);
                                }
                            }
                            None => prop_assert!(got.is_none()),
                        }
                    }
                }
                prop_assert_eq!(q.len(), model.iter().filter(|m| m.live).count());
                let want_peek = model
                    .iter()
                    .filter(|m| m.live)
                    .map(|m| m.at)
                    .min();
                prop_assert_eq!(q.peek_time(), want_peek);
            }
            }
        }
    }
}
