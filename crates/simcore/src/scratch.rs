//! Reusable per-worker metric buffers.
//!
//! Corpus-scale experiments evaluate thousands of traces, and the naive
//! metric path allocates fresh vectors for every one of them: a loss
//! indicator per correlation call, a delay vector per E-model evaluation,
//! a sorted copy per quantile. [`MetricsScratch`] is the antidote: one
//! bundle of growable buffers owned by each sweep worker (see
//! `SweepRunner::run_indexed_with`) and lent to every metric `_with`
//! variant the worker calls. Buffers grow to the high-water mark of the
//! tasks a worker claims and are then reused allocation-free.
//!
//! # Determinism
//!
//! Scratch state is *only* a buffer: every `_with` function clears what it
//! uses before writing, so results never depend on which tasks a worker
//! happened to claim earlier. This is exactly the contract
//! `run_indexed_with` requires.

/// A bundle of reusable buffers for the metrics pipeline.
///
/// The fields are public on purpose: metric helpers in other crates borrow
/// whichever buffers they need (e.g. `values` and `aux` for the two loss
/// indicators of a cross-correlation). Callers must treat the contents as
/// undefined between calls.
#[derive(Clone, Debug, Default)]
pub struct MetricsScratch {
    /// Primary `f64` buffer (loss indicators, delays, quantile samples).
    pub values: Vec<f64>,
    /// Secondary `f64` buffer (the second series of a cross-correlation).
    pub aux: Vec<f64>,
    /// Integer run-length buffer (loss-burst lengths).
    pub runs: Vec<usize>,
    /// Reusable metrics-snapshot buffer for telemetry reductions (e.g.
    /// folding per-run registries into a sweep table without reallocating
    /// rows per task).
    pub registry: crate::metrics::MetricsRegistry,
}

impl MetricsScratch {
    /// A scratch with empty buffers (no allocation until first use).
    pub fn new() -> MetricsScratch {
        MetricsScratch::default()
    }

    /// Clear all buffers, keeping their capacity.
    pub fn clear(&mut self) {
        self.values.clear();
        self.aux.clear();
        self.runs.clear();
        self.registry.clear();
    }

    /// Total capacity currently held across all buffers, in elements —
    /// a cheap gauge for high-water-mark diagnostics.
    pub fn capacity(&self) -> usize {
        self.values.capacity() + self.aux.capacity() + self.runs.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_keeps_capacity() {
        let mut s = MetricsScratch::new();
        s.values.extend([1.0; 100]);
        s.runs.extend([1usize; 50]);
        let cap = s.capacity();
        s.clear();
        assert!(s.values.is_empty() && s.runs.is_empty());
        assert_eq!(s.capacity(), cap);
    }
}
